"""Figure 8: percentage of time at each frequency.

Each application model runs under fvsst at frequency caps of 1000 MHz
(unconstrained), 750 MHz (75 W) and 500 MHz (35 W); the figure is the
distribution of scheduling intervals over frequencies.  CPU-bound
applications split between 1000/950 MHz unconstrained and collapse onto the
cap when constrained; memory-bound applications centre on 650 MHz and only
move when the cap falls below their saturation point.
"""

from __future__ import annotations

from ..analysis.report import ExperimentResult, TableResult
from ..power.table import POWER4_TABLE
from ..sim.rng import spawn_seeds
from ..units import mhz, to_mhz
from ..workloads.profiles import ALL_PROFILES
from .common import run_job_under_governor

__all__ = ["run", "CAP_FREQS_MHZ", "residency_for"]

#: The paper's three cap settings, expressed as the max frequency they buy.
CAP_FREQS_MHZ = (1000, 750, 500)


def _cap_to_power(cap_mhz: int) -> float:
    return POWER4_TABLE.power_at(mhz(cap_mhz))


def residency_for(app: str, cap_mhz: int, *, seed: int,
                  fast: bool) -> dict[int, float]:
    """Scheduled-frequency residency (MHz -> fraction) for one run."""
    profile = ALL_PROFILES[app]
    run = run_job_under_governor(
        profile.job(body_repeats=1 if fast else 2), "fvsst",
        power_limit_w=_cap_to_power(cap_mhz), seed=seed,
    )
    assert run.log is not None
    res = run.log.frequency_residency(0, 0)
    return {int(to_mhz(f)): share for f, share in res.items()}


def run(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Regenerate Figure 8."""
    apps = tuple(ALL_PROFILES)
    seeds = spawn_seeds(seed, len(apps) * len(CAP_FREQS_MHZ))
    tables = []
    scalars: dict[str, float] = {}
    i = 0
    for app in apps:
        rows = []
        for cap in CAP_FREQS_MHZ:
            res = residency_for(app, cap, seed=seeds[i], fast=fast)
            i += 1
            for freq_mhz, share in sorted(res.items()):
                rows.append((cap, freq_mhz, round(share, 3)))
            scalars[f"{app}@{cap}_modal_mhz"] = max(res, key=res.get)
        tables.append(TableResult(
            headers=("cap_mhz", "frequency_mhz", "time_fraction"),
            rows=tuple(rows),
            title=f"Figure 8 ({app}): time at each frequency",
        ))
    return ExperimentResult(
        experiment_id="fig8",
        description="frequency residency per application per cap",
        tables=tables,
        scalars=scalars,
        notes=[
            "gzip/gap: mass at 1000/950 MHz unconstrained, clipped onto "
            "750 then 500 MHz as the cap tightens; mcf/health: mass near "
            "650 MHz, unaffected at 750 MHz, clipped only at 500 MHz — the "
            "paper's Figure 8 structure.",
        ],
    )
