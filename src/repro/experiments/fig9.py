"""Figures 9 and 10: actual vs desired frequency for gap at 750 MHz.

gap runs under fvsst with a 75 W budget (750 MHz cap).  The log's step-1
epsilon-constrained frequency is the *desired* series; the applied
frequency is the *actual* series.  Desired exceeds actual exactly when the
cap binds; Figure 10 is a magnified time slice of the same data.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import ExperimentResult, SeriesResult
from ..errors import ExperimentError
from ..units import to_mhz
from ..sim.rng import spawn_seeds
from ..workloads.profiles import gap_profile
from .common import run_job_under_governor

__all__ = ["run", "run_zoom", "CAP_W"]

CAP_W = 75.0


def _series(seed: int, fast: bool) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    seeds = spawn_seeds(seed, 1)
    run_ = run_job_under_governor(
        gap_profile().job(body_repeats=1 if fast else 3), "fvsst",
        power_limit_w=CAP_W, seed=seeds[0],
    )
    if run_.log is None:
        raise ExperimentError("fvsst run produced no log")
    t, actual = run_.log.frequency_series(0, 0)
    _t2, desired = run_.log.frequency_series(0, 0, desired=True)
    return t, actual, desired


def _result(t, actual, desired, *, experiment_id: str, title: str,
            description: str) -> ExperimentResult:
    fig = SeriesResult(
        x_label="time_s",
        x=tuple(round(float(v), 3) for v in t),
        series={
            "actual_mhz": tuple(to_mhz(float(v)) for v in actual),
            "desired_mhz": tuple(to_mhz(float(v)) for v in desired),
        },
        title=title,
    )
    capped = desired > actual + 1e-6
    return ExperimentResult(
        experiment_id=experiment_id,
        description=description,
        series=[fig],
        scalars={
            "fraction_cap_binding": float(np.mean(capped)) if len(t) else 0.0,
            "max_actual_mhz": float(to_mhz(actual.max())) if len(t) else 0.0,
        },
        notes=[
            "Actual = min(desired, cap-admissible): gap's desired "
            "frequency wanders above 750 MHz but the applied frequency "
            "never exceeds it — the paper's Figures 9/10.",
        ],
    )


def run(seed: int = 2005, fast: bool = False) -> ExperimentResult:
    """Regenerate Figure 9 (full trace)."""
    t, actual, desired = _series(seed, fast)
    return _result(t, actual, desired, experiment_id="fig9",
                   title="Figure 9: actual vs desired frequency, gap @ 75 W",
                   description="gap desired/actual frequency at 750 MHz cap")


def run_zoom(seed: int = 2005, fast: bool = False,
             window: tuple[float, float] | None = None) -> ExperimentResult:
    """Regenerate Figure 10 (a magnified slice of the Figure 9 data)."""
    t, actual, desired = _series(seed, fast)
    if window is None:
        t0 = t[len(t) // 3]
        window = (float(t0), float(t0) + (1.0 if fast else 2.0))
    mask = (t >= window[0]) & (t <= window[1])
    if not mask.any():
        raise ExperimentError(f"zoom window {window} contains no samples")
    return _result(t[mask], actual[mask], desired[mask],
                   experiment_id="fig10",
                   title=f"Figure 10: magnified slice {window}",
                   description="magnified desired/actual slice for gap")
