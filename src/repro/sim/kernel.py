"""Batched time-advance kernel for event-free simulation spans.

``Simulation.run_until`` already computes the span to the next due event
once, but the machines under it still advance in 10 ms Python steps: a
machine with a supply bank re-derives an identical per-core power dict,
re-walks every core, and re-observes the bank ~100 times per simulated
second even when nothing can possibly change.  This module advances the
whole event-free span at once:

* per-core execution is either closed-form (offline/idle cores, via
  ``np.cumsum`` accumulation), a tight inlined slice loop (a core running a
  single looping job), or — when neither applies — the unmodified per-chunk
  scalar path;
* the per-chunk power vector is computed once (power is constant over an
  event-free span for eligible cores) and integrated through
  :meth:`EnergyLedger.advance_many`;
* supply-bank overload/cascade crossings are located with a bisect over the
  same chunk boundaries the scalar loop visits, and the real
  :meth:`SupplyBank.observe` runs only at the state-changing boundaries.

The contract is **bit-for-bit equality** with the scalar path: every float
is produced by the same IEEE operations in the same order (``cumsum`` is
sequential left-to-right; block ``standard_normal(n)`` draws equal ``n``
scalar draws; vectorised ``exp`` equals scalar ``exp`` — all verified by
``tests/test_sim_kernel.py`` against a literal re-implementation of the
per-chunk loop).  Enabled telemetry stays on the fast path: the only
telemetry side effect in the advance loop is the phase-transition event,
which the inlined busy loop emits at each crossing with the same payload
and per-core order as ``Job.retire``.  Anything the kernel cannot
reproduce exactly — subclassed hooks, pending frequency settling,
ONCE-mode jobs that may complete mid-span, idle listeners — falls back to
the scalar path via the same method-identity gating the vectorised
scheduler uses.  (The fleet layer above, ``repro.sim.fleet``, relaxes the
settling and ONCE gates for unbanked machines: completion is one more
columnar crossing there — see ``fleet._classify_lane``.)
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import SimulationError
from ..power.energy import EnergyAccumulator
from ..telemetry import EVENT_PHASE_TRANSITION, get_telemetry
from ..workloads.job import Job, LoopMode
from ..workloads.phase import Phase
from .core import _MIN_SLICE_S, SimulatedCore
from .counters import CounterBank
from .idle import HOT_IDLE_PHASE, IdleDetector, IdleStyle
from .os_sched import Dispatcher
from .throttle import ThrottleActuator

__all__ = ["advance_machines", "advance_machine_span", "try_fast_advance",
           "set_fleet_enabled", "fleet_enabled"]

# Per-core execution modes over one event-free span.
_OFFLINE = 0    # closed form: residency only
_IDLE = 1       # closed form: one stationary idle slice per chunk
_BUSY = 2       # inlined slice loop: single looping job, constant frequency
_CHUNKED = 3    # unmodified scalar core.advance, one call per chunk

#: Hooks whose override forces the scalar path (PR 2's gating pattern).
_CORE_HOOKS = ("advance", "_advance_slice", "_advance_idle",
               "_advance_overhead", "_jitter_scale", "_record_residency")


#: Routing switch for the fleet-wide columnar kernel (``fvsst run
#: --no-fleet-kernel`` clears it; the per-machine path is the bit-equal
#: reference either way).
_FLEET_ENABLED = True

_fleet_mod = None


def set_fleet_enabled(enabled: bool) -> None:
    """Enable/disable routing spans through :mod:`repro.sim.fleet`."""
    global _FLEET_ENABLED
    _FLEET_ENABLED = bool(enabled)


def fleet_enabled() -> bool:
    return _FLEET_ENABLED


def advance_machines(machines: Iterable, dt: float, *,
                     flush: bool = True) -> None:
    """Advance every machine across one event-free span of ``dt`` seconds.

    Spans route through the fleet-wide columnar kernel: machines eligible
    for column residency advance together in one numpy pass per span,
    everything else delegates to ``machine.advance`` (the per-machine
    batched kernel or its scalar loop).  ``flush=False`` defers writing
    fleet columns back to the machine objects — the driver's hot loop does
    this and flushes once per ``run_until``.
    """
    if _FLEET_ENABLED:
        global _fleet_mod
        if _fleet_mod is None:
            from . import fleet
            _fleet_mod = fleet
        _fleet_mod.advance_fleet(machines, dt, flush=flush)
        return
    for machine in machines:
        machine.advance(dt)


# -- eligibility ---------------------------------------------------------------


def _hooks_intact(core: SimulatedCore) -> bool:
    t = type(core)
    if t is SimulatedCore:
        return True
    return all(getattr(t, h) is getattr(SimulatedCore, h) for h in _CORE_HOOKS)


def _phases_plain(job: Job) -> bool:
    ok = job.__dict__.get("_kernel_phases_plain")
    if ok is None:
        ok = all(type(p) is Phase for p in job.phases)
        job.__dict__["_kernel_phases_plain"] = ok
    return ok


def _detector_passive(det) -> bool:
    return type(det) is IdleDetector and det.passive


def _fast_busy_job(core: SimulatedCore) -> Job | None:
    """The single looping job of an inlinable busy core, or None.

    Mirrors every condition under which ``_advance_slice`` could take a
    branch the inlined loop does not reproduce.
    """
    if not _hooks_intact(core):
        return None
    act = core.actuator
    if type(act) is not ThrottleActuator or act.pending:
        return None
    if not _detector_passive(core.idle_detector):
        return None
    if core._overhead_debt_s > _MIN_SLICE_S:
        return None
    disp = core.dispatcher
    if type(disp) is not Dispatcher or type(core.counters) is not CounterBank:
        return None
    queue = disp._queue
    if len(queue) != 1:
        return None
    job = queue[0]
    if type(job) is not Job or job.loop is not LoopMode.LOOP:
        return None
    if not _phases_plain(job):
        return None
    return job


def _classify(core: SimulatedCore) -> int | None:
    """Execution mode of one core over an event-free span, or None when the
    whole machine must take the scalar path (power not provably constant)."""
    if not _hooks_intact(core):
        return None
    if core.offline:
        return _OFFLINE
    act = core.actuator
    if type(act) is not ThrottleActuator or act.pending:
        return None
    if not _detector_passive(core.idle_detector):
        return None
    if type(core.dispatcher) is not Dispatcher:
        return None
    queue = core.dispatcher._queue
    for job in queue:
        # A ONCE job may complete mid-span, flipping is_idle and the power
        # draw at an interior boundary the kernel does not re-evaluate.
        # (The fleet layer handles that boundary as a columnar crossing
        # and admits such lanes itself — this gate must stay LOOP-only so
        # the banked span walk keeps its constant-demand premise.)
        if type(job) is not Job or job.loop is not LoopMode.LOOP:
            return None
    if core._overhead_debt_s > _MIN_SLICE_S:
        return _CHUNKED
    if type(core.counters) is not CounterBank:
        return _CHUNKED
    if not queue:
        return _IDLE
    if len(queue) == 1 and _phases_plain(queue[0]):
        return _BUSY
    return _CHUNKED


# -- closed-form accumulation ---------------------------------------------------


def _acc(initial: float, increments: np.ndarray) -> float:
    """Sequential ``x += inc`` over ``increments`` starting from ``initial``
    (``cumsum`` accumulates left-to-right, so this is bitwise the loop)."""
    buf = np.empty(increments.size + 1)
    buf[0] = initial
    buf[1:] = increments
    return float(buf.cumsum()[-1])


def _advance_offline_span(core: SimulatedCore, dts: np.ndarray) -> None:
    """Per-chunk ``_record_residency("__offline__", 0.0, dt)`` in bulk."""
    pt = core.phase_time_s
    pt["__offline__"] = _acc(pt.get("__offline__", 0.0), dts)
    ft = core.freq_time_s
    ft[0.0] = _acc(ft.get(0.0, 0.0), dts)


def _advance_idle_span(core: SimulatedCore, starts: np.ndarray,
                       dts: np.ndarray) -> bool:
    """One stationary idle slice per chunk, accumulated in bulk.

    Returns False (caller reruns the chunks through ``core.advance``) when a
    chunk would leave a float residue above ``_MIN_SLICE_S`` — at very large
    simulation times ``start + (end - start)`` can round short enough that
    the scalar loop cuts a second degenerate slice the closed form skips.
    """
    ends = starts + dts
    chunks = ends - starts
    if np.any(ends - (starts + chunks) > _MIN_SLICE_S):
        return False
    use = chunks[chunks > _MIN_SLICE_S]
    if use.size == 0:
        return True
    core.idle_detector.note_queue_length(0)
    freq = core.actuator.effective_hz(float(starts[0]))
    bank = core.counters
    if core.config.idle_style is IdleStyle.HOT_LOOP:
        phase = HOT_IDLE_PHASE
        throughput = phase.throughput(core.latencies, freq)
        instr = throughput * use
        bank.instructions = _acc(bank.instructions, instr)
        bank.cycles = _acc(bank.cycles, freq * use)
        for rate, field in ((phase.n_l2_per_instr, "n_l2"),
                            (phase.n_l3_per_instr, "n_l3"),
                            (phase.n_mem_per_instr, "n_mem"),
                            (phase.l1_stall_cycles_per_instr,
                             "l1_stall_cycles")):
            # Zero-rate adds are bitwise no-ops (x + 0.0 == x for x >= 0).
            if rate != 0.0:
                setattr(bank, field, _acc(getattr(bank, field), rate * instr))
        name = phase.name
    else:
        bank.halted_cycles = _acc(bank.halted_cycles, freq * use)
        name = "__halted__"
    pt = core.phase_time_s
    pt[name] = _acc(pt.get(name, 0.0), use)
    ft = core.freq_time_s
    ft[freq] = _acc(ft.get(freq, 0.0), use)
    return True


# -- the inlined busy-core slice loop -------------------------------------------


def _advance_busy_fast(core: SimulatedCore, job: Job,
                       chunks: Sequence[tuple[float, float]]) -> None:
    """Advance a single-looping-job core over ``chunks`` of (start, dt).

    This is ``_advance_slice`` with the stable conditions hoisted out:
    constant frequency, no settling boundary, no overhead debt, an infinite
    dispatcher slice limit (sole job), phase constants precomputed, and the
    latency jitter drawn in blocks through the core's stream-aligned buffer.
    Every float operation matches the scalar slice loop in kind and order.
    """
    t0 = chunks[0][0]
    freq = core.actuator.effective_hz(t0)
    core.idle_detector.note_queue_length(1)
    job.mark_started(t0)

    lat = core.latencies
    pdata = []
    for p in job.phases:
        core_cpi = (1.0 / p.alpha
                    + p.l1_stall_cycles_per_instr
                    + p.unmodeled_stall_cycles_per_instr)
        mem_time = (p.n_l2_per_instr * lat.t_l2_s
                    + p.n_l3_per_instr * lat.t_l3_s
                    + p.n_mem_per_instr * lat.t_mem_s)
        pdata.append((p.name, p.instructions, core_cpi, mem_time,
                      p.n_l2_per_instr, p.n_l3_per_instr,
                      p.n_mem_per_instr, p.l1_stall_cycles_per_instr))
    nph = len(pdata)

    pidx = job.phase_index
    prog = job.phase_progress
    retired = job.instructions_retired
    iters = job.iterations
    bank = core.counters
    ci = bank.instructions
    cc = bank.cycles
    c2 = bank.n_l2
    c3 = bank.n_l3
    cm = bank.n_mem
    cl1 = bank.l1_stall_cycles
    pt = core.phase_time_s
    res: dict[str, float] = {}
    name, pinstr, ccpi, mem, r2, r3, rm, rl1 = pdata[pidx]
    cur_res = pt.get(name, 0.0)
    ft = core.freq_time_s.get(freq, 0.0)

    sigma = core.config.latency_jitter_sigma
    jits: list[float] = []
    pos = buflen = 0
    if sigma > 0.0:
        if core._jitter_buf is None or core._jitter_buf[0] != sigma:
            core._refill_jitter(64)
        jits = core._jitter_buf[2]
        pos = core._jitter_pos
        buflen = len(jits)

    tel = get_telemetry()
    emit = tel.enabled
    jname = job.name
    min_slice = _MIN_SLICE_S
    try:
        for start, dt in chunks:
            t = start
            end = start + dt
            while end - t > min_slice:
                rem = pinstr - prog
                if sigma > 0.0:
                    if pos >= buflen:
                        core._jitter_pos = pos
                        core._refill_jitter(256)
                        jits = core._jitter_buf[2]
                        pos = core._jitter_pos
                        buflen = len(jits)
                    jit = jits[pos]
                    pos += 1
                    cpi = ccpi + mem * jit * freq
                else:
                    cpi = ccpi + mem * freq
                throughput = freq / cpi
                if throughput <= 0.0:
                    raise SimulationError(
                        f"non-positive throughput on core {core.core_id}")
                ttpe = rem / throughput
                limit = end - t
                chunk = limit if limit < ttpe else ttpe
                if chunk < min_slice:
                    chunk = min_slice
                if chunk >= ttpe:
                    chunk = ttpe
                    instr = rem
                else:
                    instr = throughput * chunk
                if instr <= 0.0:
                    # Degenerate float corner: force the boundary across.
                    instr = rem
                    chunk = ttpe
                ci += instr
                cc += freq * chunk
                c2 += r2 * instr
                c3 += r3 * instr
                cm += rm * instr
                cl1 += rl1 * instr
                cur_res += chunk
                ft += chunk
                prog += instr
                retired += instr
                if prog >= pinstr * (1.0 - 1e-12):
                    prog = 0.0
                    if pidx + 1 < nph:
                        pidx += 1
                    else:
                        pidx = 0
                        iters += 1
                    res[name] = cur_res
                    prev_name = name
                    name, pinstr, ccpi, mem, r2, r3, rm, rl1 = pdata[pidx]
                    cur_res = res.get(name)
                    if cur_res is None:
                        cur_res = pt.get(name, 0.0)
                    if emit:
                        # Same payload/order as Job.retire's _advance_phase
                        # (a looping job is never done).
                        tel.emit(EVENT_PHASE_TRANSITION, sim_time_s=t + chunk,
                                 job=jname, from_phase=prev_name,
                                 to_phase=name)
                t = t + chunk
    finally:
        # Each slice's mutations are grouped, so the locals are consistent
        # even when the loop raises; commit exactly what ran.
        if sigma > 0.0:
            core._jitter_pos = pos
        res[name] = cur_res
        pt.update(res)
        core.freq_time_s[freq] = ft
        bank.instructions = ci
        bank.cycles = cc
        bank.n_l2 = c2
        bank.n_l3 = c3
        bank.n_mem = cm
        bank.l1_stall_cycles = cl1
        job.phase_index = pidx
        job.phase_progress = prog
        job.instructions_retired = retired
        job.iterations = iters


def try_fast_advance(core: SimulatedCore, start_s: float, dt: float) -> bool:
    """Core-level fast path: one event-free span on one busy core.

    Returns False (caller runs the scalar slice loop) unless the core is a
    plain ``SimulatedCore`` running exactly one looping job at constant
    frequency.
    """
    job = _fast_busy_job(core)
    if job is None:
        return False
    _advance_busy_fast(core, job, ((start_s, dt),))
    return True


# -- machine-level span ---------------------------------------------------------


def advance_machine_span(machine, bounds: list[float]) -> bool:
    """Advance one machine through every chunk boundary in ``bounds``.

    ``bounds`` are the ascending supply-observation boundaries ending at the
    span end (machine time starts at ``machine._now_s``).  Returns False
    without touching anything when any component rules out the batched
    path; the caller then runs the scalar per-chunk loop.

    On a raising cascade the machine, like the scalar loop, is left advanced
    through the boundary at which :meth:`SupplyBank.observe` raised.
    """
    ledger = machine.ledger
    if any(type(a) is not EnergyAccumulator for a in ledger.accounts.values()):
        return False
    modes = []
    for core in machine.cores:
        mode = _classify(core)
        if mode is None:
            return False
        modes.append(mode)

    t0 = machine._now_s
    meter = machine.meter
    powers = {f"core{c.core_id}": meter.core_power_w(c, t0)
              for c in machine.cores}
    powers["non_cpu"] = meter.non_cpu_power_w
    demand = machine.system_power_w()
    n_exec, actions = machine.supply_bank.plan_constant_span(bounds, demand)

    times = bounds[:n_exec]
    barr = np.asarray(times)
    starts = np.empty(barr.size)
    starts[0] = t0
    starts[1:] = barr[:-1]
    dts = barr - starts

    for core, mode in zip(machine.cores, modes):
        if mode == _OFFLINE:
            _advance_offline_span(core, dts)
        elif mode == _IDLE:
            if not _advance_idle_span(core, starts, dts):
                mode = _CHUNKED
        elif mode == _BUSY:
            chunk_list = list(zip(starts.tolist(), dts.tolist()))
            _advance_busy_fast(core, core.dispatcher._queue[0], chunk_list)
        if mode == _CHUNKED:
            prev = t0
            for t_end in times:
                core.advance(prev, t_end - prev)
                prev = t_end

    machine._now_s = times[-1]
    ledger.advance_many(barr, powers)
    for j in actions:
        # The last action may raise CascadeFailureError, exactly like the
        # scalar loop raising at that boundary.
        machine.supply_bank.observe(bounds[j], demand)
    return True
