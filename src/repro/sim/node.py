"""A cluster node: one SMP machine plus its identity.

Keeps the machine simulator unaware of clusters; everything cluster-level
(agents, the coordinator, the network) references nodes by this wrapper.
"""

from __future__ import annotations

from ..errors import ClusterError
from ..workloads.job import Job
from .machine import MachineConfig, SMPMachine

__all__ = ["ClusterNode"]


class ClusterNode:
    """One node of a cluster."""

    def __init__(self, node_id: int, machine: SMPMachine) -> None:
        if node_id < 0:
            raise ClusterError("node_id must be non-negative")
        self.node_id = node_id
        self.machine = machine
        #: Manual crash injection: while True the node's agent is down
        #: (no samples, no reports, no command application).  The
        #: scheduled analogue is :class:`repro.cluster.faults.CrashWindow`.
        self.crashed = False

    @classmethod
    def build(cls, node_id: int, *, config: MachineConfig | None = None,
              seed: int | None = None) -> "ClusterNode":
        """Construct a node with a fresh machine."""
        return cls(node_id, SMPMachine(config, seed=seed))

    def crash(self) -> None:
        """Take the node's agent down (fault injection)."""
        self.crashed = True

    def recover(self) -> None:
        """Bring the node's agent back up."""
        self.crashed = False

    @property
    def num_procs(self) -> int:
        return self.machine.num_cores

    def assign(self, proc: int, job: Job) -> None:
        """Place a job on processor ``proc`` of this node."""
        self.machine.assign(proc, job)

    def cpu_power_w(self) -> float:
        """True processor draw of this node."""
        return self.machine.cpu_power_w()

    def __repr__(self) -> str:
        return f"ClusterNode(id={self.node_id}, procs={self.num_procs})"
