"""System power measurement.

"The system uses power status and measurement data to determine the value
of the limit and to monitor compliance with it" (Section 5).  The meter
computes the instantaneous draw of a machine — per-core operating-point
power from the frequency/power table (the paper's conservative upper bound,
which ignores clock gating) plus fixed non-CPU power — and optionally adds
measurement noise, since real power instrumentation is itself imperfect.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..power.table import FrequencyPowerTable
from ..units import check_non_negative
from .core import SimulatedCore
from .idle import IdleStyle
from .rng import make_rng

__all__ = ["PowerMeter"]


class PowerMeter:
    """Instantaneous power of a set of cores plus non-CPU overhead.

    ``halted_idle_fraction`` scales a *halting* core's operating-point power
    (the hot-idling Power4+ draws the full amount; a halting design draws a
    fraction).  ``noise_sigma`` applies multiplicative Gaussian noise to
    measured readings only — the true draw used for energy accounting and
    supply stress is exact.
    """

    def __init__(self, table: FrequencyPowerTable, *,
                 non_cpu_power_w: float = 0.0,
                 halted_idle_fraction: float = 0.25,
                 noise_sigma: float = 0.0,
                 rng: np.random.Generator | int | None = None) -> None:
        check_non_negative(non_cpu_power_w, "non_cpu_power_w")
        check_non_negative(noise_sigma, "noise_sigma")
        if not 0.0 <= halted_idle_fraction <= 1.0:
            raise SimulationError("halted_idle_fraction must lie in [0, 1]")
        self.table = table
        self.non_cpu_power_w = non_cpu_power_w
        self.halted_idle_fraction = halted_idle_fraction
        self.noise_sigma = noise_sigma
        self._rng = make_rng(rng)
        # Memo of frequency -> operating-point power.  The table is
        # immutable, so nearest+power_at is a pure function of the
        # frequency; the meter runs it on every core every chunk.  Bounded
        # in case something sweeps a continuum of frequencies.
        self._point_power_cache: dict[float, float] = {}

    def _point_power(self, freq_hz: float) -> float:
        power = self._point_power_cache.get(freq_hz)
        if power is None:
            if len(self._point_power_cache) > 4096:
                self._point_power_cache.clear()
            power = self.table.power_at(self.table.nearest(freq_hz))
            self._point_power_cache[freq_hz] = power
        return power

    def core_power_w(self, core: SimulatedCore, now_s: float) -> float:
        """True instantaneous draw of one core."""
        if core.offline:
            return 0.0
        freq = core.effective_frequency_hz(now_s)
        power = self._point_power(freq)
        power *= core.power_scale
        if core.is_idle and core.config.idle_style is IdleStyle.HALT:
            power *= self.halted_idle_fraction
        return power

    def cpu_power_w(self, cores: list[SimulatedCore], now_s: float) -> float:
        """True aggregate processor draw."""
        return sum(self.core_power_w(c, now_s) for c in cores)

    def system_power_w(self, cores: list[SimulatedCore], now_s: float) -> float:
        """True whole-system draw (CPUs + everything else)."""
        return self.cpu_power_w(cores, now_s) + self.non_cpu_power_w

    def measure_w(self, cores: list[SimulatedCore], now_s: float) -> float:
        """A *measured* system reading (noisy if configured)."""
        return self._noisy(self.system_power_w(cores, now_s))

    def measure_cpu_w(self, cores: list[SimulatedCore], now_s: float) -> float:
        """A *measured* aggregate processor reading (noisy if configured) —
        what the Section 5 compliance feedback loop consumes."""
        return self._noisy(self.cpu_power_w(cores, now_s))

    def _noisy(self, true: float) -> float:
        if self.noise_sigma <= 0.0:
            return true
        return max(0.0, true * (1.0 + self.noise_sigma
                                * float(self._rng.standard_normal())))
