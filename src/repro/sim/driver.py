"""The simulation loop.

A :class:`Simulation` owns the clock and event queue and advances one or
more machines between events.  Periodic activities (the daemon's counter
sampling, its scheduling pass) register as self-rescheduling
:class:`PeriodicTask` objects; one-off occurrences (a PSU failure at ``T0``,
a curtailment request) schedule once.

The loop guarantees machines never integrate across an event boundary, so
frequency changes made inside callbacks take effect at exact simulation
times.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from ..errors import SimulationError
from ..telemetry import Telemetry, get_telemetry
from ..units import check_non_negative, check_positive
from .clock import SimClock
from .events import Event, EventQueue
from .fleet import flush_machines
from .kernel import advance_machines
from .machine import SMPMachine

__all__ = ["Simulation", "PeriodicTask"]


class PeriodicTask:
    """A self-rescheduling periodic callback.

    The callback may raise ``StopIteration`` to end the chain, or the owner
    may call :meth:`cancel`.
    """

    def __init__(self, queue: EventQueue, period_s: float,
                 callback: Callable[[float], None], first_time_s: float,
                 name: str) -> None:
        check_positive(period_s, "period_s")
        self._queue = queue
        self.period_s = period_s
        self._callback = callback
        self.name = name
        self._cancelled = False
        self._handle: Event = queue.schedule(first_time_s, self._fire, name=name)

    def _fire(self, t: float) -> None:
        if self._cancelled:
            return
        try:
            self._callback(t)
        except StopIteration:
            self._cancelled = True
            return
        if not self._cancelled:
            self._handle = self._queue.schedule(
                t + self.period_s, self._fire, name=self.name
            )

    def cancel(self) -> None:
        """Stop the chain; pending firing is skipped."""
        self._cancelled = True
        self._handle.cancel()

    @property
    def next_time_s(self) -> float | None:
        """When the task will next fire (None once cancelled)."""
        return None if self._cancelled else self._handle.time_s


class Simulation:
    """Event-driven driver over one or more machines."""

    def __init__(self, machines: SMPMachine | Sequence[SMPMachine], *,
                 start_s: float = 0.0,
                 telemetry: Telemetry | None = None) -> None:
        if isinstance(machines, SMPMachine):
            machines = [machines]
        if not machines:
            raise SimulationError("a simulation needs at least one machine")
        self.machines: list[SMPMachine] = list(machines)
        self.clock = SimClock(start_s)
        self.events = EventQueue()
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        m = self.telemetry.metrics
        self._m_dispatched = m.counter(
            "sim_events_dispatched_total", "Simulation events fired")
        self._m_callback_seconds = m.histogram(
            "sim_callback_seconds",
            "Wall-clock latency of each fired event callback")
        # Per-event stats batch locally and flush when run_until returns
        # (and on any snapshot), keeping the dispatch loop lock-free.
        self._pending_dispatched = 0
        self._pending_callback_s: list[float] = []
        if self.telemetry.enabled:
            self.telemetry.add_flusher(self._flush_dispatch_stats)

    @property
    def now_s(self) -> float:
        return self.clock.now_s

    # -- scheduling ------------------------------------------------------------------

    def at(self, time_s: float, callback: Callable[[float], None], *,
           name: str = "") -> Event:
        """Schedule a one-off callback at absolute time ``time_s``."""
        if time_s < self.now_s:
            raise SimulationError(
                f"cannot schedule at {time_s} (now is {self.now_s})"
            )
        return self.events.schedule(time_s, callback, name=name)

    def after(self, delay_s: float, callback: Callable[[float], None], *,
              name: str = "") -> Event:
        """Schedule a one-off callback ``delay_s`` from now."""
        check_non_negative(delay_s, "delay_s")
        return self.at(self.now_s + delay_s, callback, name=name)

    def every(self, period_s: float, callback: Callable[[float], None], *,
              name: str = "", start_offset_s: float | None = None) -> PeriodicTask:
        """Register a periodic callback.

        The first firing is at ``now + (start_offset_s if given else
        period_s)``; each firing reschedules the next.
        """
        offset = period_s if start_offset_s is None else start_offset_s
        check_non_negative(offset, "start_offset_s")
        return PeriodicTask(self.events, period_s, callback,
                            self.now_s + offset, name)

    # -- running ---------------------------------------------------------------------

    def _advance_machines(self, dt: float) -> None:
        # One batched advance per machine per event-free span; resident
        # machines stay in fleet columns between spans (counters still
        # synchronise on snapshot) and flush when run_until returns.
        advance_machines(self.machines, dt, flush=False)

    def run_until(self, t_end_s: float) -> None:
        """Advance simulation time to ``t_end_s``, firing events on the way."""
        if t_end_s < self.now_s:
            raise SimulationError(
                f"cannot run to {t_end_s} (now is {self.now_s})"
            )
        instrumented = self.telemetry.enabled
        try:
            while True:
                next_event = self.events.next_time()
                if next_event is None or next_event > t_end_s:
                    self._advance_machines(t_end_s - self.now_s)
                    self.clock.advance_to(t_end_s)
                    if instrumented:
                        self._flush_dispatch_stats()
                    return
                self._advance_machines(max(0.0, next_event - self.now_s))
                self.clock.advance_to(max(next_event, self.now_s))
                if instrumented:
                    self._run_due_instrumented(self.now_s)
                else:
                    self.events.run_due(self.now_s)
        finally:
            flush_machines(self.machines)

    def _run_due_instrumented(self, now_s: float) -> None:
        """``EventQueue.run_due`` with per-callback latency accounting."""
        while True:
            event = self.events.pop_due(now_s)
            if event is None:
                return
            wall0 = time.perf_counter()
            event.callback(event.time_s)
            self._pending_callback_s.append(time.perf_counter() - wall0)
            self._pending_dispatched += 1

    def _flush_dispatch_stats(self) -> None:
        """Push event-batched stats into the registry (one lock per batch)."""
        if self._pending_dispatched:
            self._m_dispatched.inc(self._pending_dispatched)
            self._pending_dispatched = 0
        if self._pending_callback_s:
            self._m_callback_seconds.observe_many(self._pending_callback_s)
            self._pending_callback_s = []

    def run_for(self, duration_s: float) -> None:
        """Advance by ``duration_s``."""
        check_non_negative(duration_s, "duration_s")
        self.run_until(self.now_s + duration_s)
