"""Per-core performance counters and their (noisy) readers.

The Power4+ "provides performance counters for cache and memory accesses"
(Section 6); the prototype read them through a kernel interface every
``t`` milliseconds.  A :class:`CounterBank` is the hardware-side cumulative
register file; a :class:`CounterReader` belongs to the software side and
produces interval deltas (:class:`CounterSample`), optionally corrupted by
multiplicative read noise — one of the error sources behind Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CounterError
from ..model.ipc import MemoryCounts
from ..units import check_non_negative
from .rng import make_rng

__all__ = ["CounterBank", "CounterSnapshot", "CounterSample", "CounterReader"]

_FIELDS = ("instructions", "cycles", "n_l2", "n_l3", "n_mem",
           "l1_stall_cycles", "halted_cycles")


@dataclass
class CounterBank:
    """Cumulative hardware counters of one core.

    ``cycles`` counts *run* cycles (clock ticks while executing, at whatever
    the effective frequency was); ``halted_cycles`` counts ticks spent
    halted for cores that idle by halting (zero on a hot-idling Power4+).
    """

    instructions: float = 0.0
    cycles: float = 0.0
    n_l2: float = 0.0
    n_l3: float = 0.0
    n_mem: float = 0.0
    l1_stall_cycles: float = 0.0
    halted_cycles: float = 0.0

    def add_execution(self, counts: MemoryCounts, cycles: float) -> None:
        """Accumulate one executed slice (expected-value counters)."""
        check_non_negative(cycles, "cycles")
        self.instructions += counts.instructions
        self.cycles += cycles
        self.n_l2 += counts.n_l2
        self.n_l3 += counts.n_l3
        self.n_mem += counts.n_mem
        self.l1_stall_cycles += counts.l1_stall_cycles

    def add_halted(self, cycles: float) -> None:
        """Accumulate halted ticks."""
        check_non_negative(cycles, "cycles")
        self.halted_cycles += cycles

    def snapshot(self) -> "CounterSnapshot":
        """An immutable copy of the current totals.

        While the owning core is resident in the fleet kernel, its running
        totals live in fleet columns and the bank's fields lag behind; the
        fleet installs ``_fleet_flush`` here so a snapshot (the only way
        agents and readers observe counters) synchronises first.
        """
        flush = getattr(self, "_fleet_flush", None)
        if flush is not None:
            flush()
        # Positional, not a getattr comprehension: this runs per core per
        # daemon sampling tick (field order is the dataclass order).
        return CounterSnapshot(self.instructions, self.cycles, self.n_l2,
                               self.n_l3, self.n_mem, self.l1_stall_cycles,
                               self.halted_cycles)


@dataclass(frozen=True, slots=True)
class CounterSnapshot:
    """Immutable counter totals at one instant."""

    instructions: float
    cycles: float
    n_l2: float
    n_l3: float
    n_mem: float
    l1_stall_cycles: float
    halted_cycles: float

    def as_tuple(self) -> tuple[float, ...]:
        """Field values in ``_FIELDS`` order."""
        return (self.instructions, self.cycles, self.n_l2, self.n_l3,
                self.n_mem, self.l1_stall_cycles, self.halted_cycles)

    def delta(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        """Field-wise difference ``self - earlier``.

        Raises :class:`CounterError` on negative deltas (counter rollback),
        which would indicate a simulator bug.
        """
        values = []
        for name, a, b in zip(_FIELDS, self.as_tuple(), earlier.as_tuple()):
            d = a - b
            if d < -1e-6:
                raise CounterError(f"counter {name} went backwards by {-d}")
            values.append(max(0.0, d))
        return CounterSnapshot(*values)


@dataclass(frozen=True, slots=True)
class CounterSample:
    """One sampling interval as the daemon sees it."""

    time_s: float
    interval_s: float
    instructions: float
    cycles: float
    n_l2: float
    n_l3: float
    n_mem: float
    l1_stall_cycles: float
    halted_cycles: float

    @property
    def ipc(self) -> float:
        """Observed instructions per run cycle (0 for a fully halted interval)."""
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    @property
    def effective_freq_hz(self) -> float:
        """Average effective frequency over the interval, inferred the way
        the daemon does it: run cycles divided by wall time."""
        return self.cycles / self.interval_s if self.interval_s > 0 else 0.0

    @property
    def halted_fraction(self) -> float:
        """Fraction of total ticks spent halted."""
        total = self.cycles + self.halted_cycles
        return self.halted_cycles / total if total > 0 else 0.0

    def memory_counts(self) -> MemoryCounts:
        """The subset the performance model consumes."""
        return MemoryCounts(
            instructions=self.instructions,
            n_l2=self.n_l2,
            n_l3=self.n_l3,
            n_mem=self.n_mem,
            l1_stall_cycles=self.l1_stall_cycles,
        )


class CounterReader:
    """Delta-producing reader over a :class:`CounterBank`.

    ``noise_sigma`` applies independent multiplicative Gaussian noise to
    each delta field (clamped non-negative), modelling sampling skew and
    multiplexed-counter estimation error on real hardware.
    """

    def __init__(self, bank: CounterBank, *, noise_sigma: float = 0.0,
                 dropout_prob: float = 0.0,
                 rng: np.random.Generator | int | None = None) -> None:
        check_non_negative(noise_sigma, "noise_sigma")
        if not 0.0 <= dropout_prob <= 1.0:
            raise CounterError("dropout_prob must lie in [0, 1]")
        self._bank = bank
        self._noise_sigma = noise_sigma
        #: Probability that a read fails outright (kernel interface busy,
        #: counter multiplexing conflict): the sample comes back empty and
        #: its events fold into the next successful read.
        self._dropout_prob = dropout_prob
        self._rng = make_rng(rng)
        self._last = bank.snapshot()
        self._last_time_s: float | None = None
        #: Number of failed reads so far.
        self.dropouts = 0

    def sample(self, now_s: float) -> CounterSample:
        """Read deltas since the previous sample (or since construction).

        A dropped read returns an all-zero sample for the interval; the
        unread events stay pending and appear in the next good read (the
        cumulative registers are the source of truth).
        """
        check_non_negative(now_s, "now_s")
        if self._dropout_prob > 0.0 and \
                float(self._rng.uniform()) < self._dropout_prob:
            # Neither the snapshot nor the timestamp advances: the missed
            # events and their wall time both land in the next good read,
            # keeping windowed aggregates exact.
            self.dropouts += 1
            return CounterSample(
                time_s=now_s, interval_s=0.0,
                **{f: 0.0 for f in _FIELDS},
            )
        snap = self._bank.snapshot()
        delta = snap.delta(self._last)
        if self._last_time_s is not None and now_s < self._last_time_s:
            raise CounterError(
                f"sample time went backwards: {now_s} < {self._last_time_s}"
            )
        interval = 0.0 if self._last_time_s is None else now_s - self._last_time_s
        self._last = snap
        self._last_time_s = now_s

        values = list(delta.as_tuple())
        if self._noise_sigma > 0.0:
            # One block draw: standard_normal(n) yields the exact stream of
            # n scalar draws, so noisy samples are unchanged bit-for-bit.
            draws = self._rng.standard_normal(len(_FIELDS))
            for i in range(len(_FIELDS)):
                noise = 1.0 + self._noise_sigma * float(draws[i])
                values[i] = max(0.0, values[i] * noise)
        return CounterSample(now_s, interval, *values)
