"""The per-core OS dispatcher (Section 6's Linux substrate).

A round-robin dispatcher with a fixed time quantum multiplexes the jobs
assigned to one core.  Work has "strong or complete affinity ... to its
originally assigned processors" (Section 4.2): jobs never migrate, matching
both the paper's assumption and the cluster reality it argues from.

The 10 ms quantum reflects the 2.6-era Linux time slice that constrained
the prototype's choice of ``t`` ("values for t of less than 10 ms interfere
with the time quantum used in the operating system").
"""

from __future__ import annotations

from collections import deque

from ..errors import SimulationError
from ..units import check_positive
from ..workloads.job import Job

__all__ = ["Dispatcher", "DEFAULT_QUANTUM_S"]

#: Linux 2.6-era default time slice.
DEFAULT_QUANTUM_S = 0.010


class Dispatcher:
    """Round-robin multiplexing of jobs on one core."""

    def __init__(self, *, quantum_s: float = DEFAULT_QUANTUM_S) -> None:
        check_positive(quantum_s, "quantum_s")
        self.quantum_s = quantum_s
        self._queue: deque[Job] = deque()
        self._quantum_left_s = quantum_s
        #: Jobs that ran to completion on this core.
        self.finished: list[Job] = []

    # -- queue management -------------------------------------------------------

    def add_job(self, job: Job) -> None:
        """Enqueue a job (it stays on this core for life — affinity)."""
        if job.done:
            raise SimulationError(f"cannot enqueue completed job {job.name!r}")
        self._queue.append(job)

    def remove_job(self, job: Job) -> None:
        """Take a job off this core (the migration path).

        Only callable between execution slices — i.e. from event callbacks,
        never from inside ``account_run``.  Resets the quantum if the
        current job was removed.
        """
        try:
            was_current = self._queue[0] is job
        except IndexError:
            was_current = False
        try:
            self._queue.remove(job)
        except ValueError:
            raise SimulationError(
                f"job {job.name!r} is not queued on this core"
            ) from None
        if was_current:
            self._quantum_left_s = self.quantum_s

    @property
    def runnable(self) -> int:
        """Number of runnable jobs."""
        return len(self._queue)

    @property
    def jobs(self) -> tuple[Job, ...]:
        """The runnable jobs, current first."""
        return tuple(self._queue)

    def current_job(self) -> Job | None:
        """The job that owns the core right now (None when idle)."""
        return self._queue[0] if self._queue else None

    # -- time accounting ----------------------------------------------------------

    def slice_limit_s(self) -> float:
        """How much wall time the current job may still run before the
        dispatcher would rotate the queue."""
        if len(self._queue) <= 1:
            return float("inf")  # sole job never needs preemption
        return self._quantum_left_s

    def account_run(self, job: Job, ran_s: float, now_s: float) -> None:
        """Charge ``ran_s`` of execution to ``job`` and rotate/retire as needed.

        The core calls this after executing a slice; ``job`` must be the
        current job.
        """
        if not self._queue or self._queue[0] is not job:
            raise SimulationError("accounted job is not the dispatched job")
        if ran_s < 0:
            raise SimulationError(f"negative run time {ran_s}")
        if job.done:
            self._queue.popleft()
            self.finished.append(job)
            self._quantum_left_s = self.quantum_s
            return
        if len(self._queue) > 1:
            self._quantum_left_s -= ran_s
            if self._quantum_left_s <= 1e-12:
                self._queue.rotate(-1)
                self._quantum_left_s = self.quantum_s


def balance_initial(jobs: list[Job], cores: int) -> list[list[Job]]:
    """Static initial load balancing: round-robin jobs over cores.

    "Clusters ... try to balance the load through clever initial assignments
    of work" (Section 5); this is the simple version used by experiments
    that need multiprogrammed cores.
    """
    if cores < 1:
        raise SimulationError("need at least one core")
    assignment: list[list[Job]] = [[] for _ in range(cores)]
    for i, job in enumerate(jobs):
        assignment[i % cores].append(job)
    return assignment
