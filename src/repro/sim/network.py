"""A latency/cost model for cluster communication.

The paper amortises "the overhead of ... the inter-processor communication
required" by choosing a large scheduling period ``T`` (Section 5).  To make
that trade-off measurable, the cluster coordinator routes its counter
collections and frequency commands through a :class:`Network` that charges a
base latency plus a per-byte cost and counts traffic.

The network is perfectly reliable by default.  Installing a
:class:`NetworkFaults` plan turns on the failure modes real deployments
treat as the common case: independent per-message loss, multiplicative
latency jitter, and partition windows that cut a subset of nodes off the
fabric.  All randomness is drawn from one seeded generator
(:mod:`repro.sim.rng`), so a fault run is reproducible from its seed.
Fault-aware callers use :meth:`Network.try_send`; the plain
:meth:`Network.send` path is untouched, so fault-free simulations are
bit-identical with or without this extension present.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ClusterError
from ..units import check_non_negative
from .rng import make_rng

__all__ = ["NetworkConfig", "Network", "NetworkFaults", "PartitionWindow"]


@dataclass(frozen=True, slots=True)
class NetworkConfig:
    """Latency parameters of the cluster interconnect."""

    #: One-way base latency of any message (switch + stack), seconds.
    base_latency_s: float = 100e-6
    #: Additional seconds per payload byte (inverse bandwidth).
    per_byte_s: float = 8e-9   # ~1 Gbit/s

    def __post_init__(self) -> None:
        check_non_negative(self.base_latency_s, "base_latency_s")
        check_non_negative(self.per_byte_s, "per_byte_s")


@dataclass(frozen=True, slots=True)
class PartitionWindow:
    """A time window during which some (or all) nodes are unreachable."""

    start_s: float
    end_s: float
    #: Nodes cut off the fabric; ``None`` partitions every node.
    node_ids: frozenset[int] | None = None

    def __post_init__(self) -> None:
        check_non_negative(self.start_s, "start_s")
        if self.end_s <= self.start_s:
            raise ClusterError(
                f"partition window [{self.start_s}, {self.end_s}) is empty"
            )

    def cuts(self, node_id: int, now_s: float) -> bool:
        """Whether messages to/from ``node_id`` are cut at ``now_s``."""
        if not (self.start_s <= now_s < self.end_s):
            return False
        return self.node_ids is None or node_id in self.node_ids


class NetworkFaults:
    """Deterministic, seeded fault plan for a :class:`Network`.

    Loss and jitter draw from one private generator, so two runs with the
    same seed see the same drop pattern regardless of what other components
    do with their own streams.
    """

    def __init__(self, *, loss_prob: float = 0.0,
                 jitter_sigma: float = 0.0,
                 partitions: tuple[PartitionWindow, ...] = (),
                 seed: int | None = None) -> None:
        if not 0.0 <= loss_prob <= 1.0:
            raise ClusterError("loss_prob must be within [0, 1]")
        check_non_negative(jitter_sigma, "jitter_sigma")
        self.loss_prob = loss_prob
        self.jitter_sigma = jitter_sigma
        self.partitions = tuple(partitions)
        self._rng = make_rng(seed)

    def partitioned(self, node_id: int, now_s: float) -> bool:
        """Whether ``node_id`` is inside a partition window at ``now_s``."""
        return any(w.cuts(node_id, now_s) for w in self.partitions)

    def drops(self, node_id: int, now_s: float) -> bool:
        """Decide the fate of one message to/from ``node_id``.

        Partition windows drop deterministically (and consume no
        randomness); otherwise an independent Bernoulli draw at
        ``loss_prob``.
        """
        if self.partitioned(node_id, now_s):
            return True
        if self.loss_prob <= 0.0:
            return False
        return bool(self._rng.random() < self.loss_prob)

    def jitter_factor(self) -> float:
        """Multiplicative latency factor (lognormal around 1, >= 0)."""
        if self.jitter_sigma <= 0.0:
            return 1.0
        return float(self._rng.lognormal(mean=0.0, sigma=self.jitter_sigma))


@dataclass
class Network:
    """Message accounting plus deterministic delay computation."""

    config: NetworkConfig = field(default_factory=NetworkConfig)
    #: Optional fault plan consulted by :meth:`try_send` only.
    faults: NetworkFaults | None = None
    messages_sent: int = field(default=0, init=False)
    bytes_sent: int = field(default=0, init=False)
    messages_dropped: int = field(default=0, init=False)

    def delay_for(self, payload_bytes: int) -> float:
        """One-way delivery delay for a message of the given size."""
        if payload_bytes < 0:
            raise ClusterError("payload size cannot be negative")
        return self.config.base_latency_s + self.config.per_byte_s * payload_bytes

    def send(self, payload_bytes: int) -> float:
        """Account one message; returns its delivery delay."""
        delay = self.delay_for(payload_bytes)
        self.messages_sent += 1
        self.bytes_sent += payload_bytes
        return delay

    def round_trip_s(self, payload_bytes: int, reply_bytes: int = 64) -> float:
        """Request/response delay (used for synchronous collections)."""
        return self.send(payload_bytes) + self.send(reply_bytes)

    def try_send(self, payload_bytes: int, *, now_s: float,
                 node_id: int) -> float | None:
        """Fault-aware send: delivery delay, or ``None`` when dropped.

        Dropped messages are still accounted (they were put on the wire)
        and tallied in :attr:`messages_dropped`.  Without an installed
        fault plan this is exactly :meth:`send`.
        """
        delay = self.send(payload_bytes)
        if self.faults is None:
            return delay
        if self.faults.drops(node_id, now_s):
            self.messages_dropped += 1
            return None
        return delay * self.faults.jitter_factor()
