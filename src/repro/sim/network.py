"""A latency/cost model for cluster communication.

The paper amortises "the overhead of ... the inter-processor communication
required" by choosing a large scheduling period ``T`` (Section 5).  To make
that trade-off measurable, the cluster coordinator routes its counter
collections and frequency commands through a :class:`Network` that charges a
base latency plus a per-byte cost and counts traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ClusterError
from ..units import check_non_negative

__all__ = ["NetworkConfig", "Network"]


@dataclass(frozen=True, slots=True)
class NetworkConfig:
    """Latency parameters of the cluster interconnect."""

    #: One-way base latency of any message (switch + stack), seconds.
    base_latency_s: float = 100e-6
    #: Additional seconds per payload byte (inverse bandwidth).
    per_byte_s: float = 8e-9   # ~1 Gbit/s

    def __post_init__(self) -> None:
        check_non_negative(self.base_latency_s, "base_latency_s")
        check_non_negative(self.per_byte_s, "per_byte_s")


@dataclass
class Network:
    """Message accounting plus deterministic delay computation."""

    config: NetworkConfig = field(default_factory=NetworkConfig)
    messages_sent: int = field(default=0, init=False)
    bytes_sent: int = field(default=0, init=False)

    def delay_for(self, payload_bytes: int) -> float:
        """One-way delivery delay for a message of the given size."""
        if payload_bytes < 0:
            raise ClusterError("payload size cannot be negative")
        return self.config.base_latency_s + self.config.per_byte_s * payload_bytes

    def send(self, payload_bytes: int) -> float:
        """Account one message; returns its delivery delay."""
        delay = self.delay_for(payload_bytes)
        self.messages_sent += 1
        self.bytes_sent += payload_bytes
        return delay

    def round_trip_s(self, payload_bytes: int, reply_bytes: int = 64) -> float:
        """Request/response delay (used for synchronous collections)."""
        return self.send(payload_bytes) + self.send(reply_bytes)
