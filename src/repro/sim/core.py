"""A simulated Power4+ core.

The core executes the jobs in its dispatcher queue analytically: over a
wall-clock slice at effective frequency ``f`` the current phase retires
``f / CPI_true(f)`` instructions per second, where the ground-truth CPI uses
the same frequency-separable decomposition as the Section 4.3 model plus the
unmodeled-stall component and a per-slice latency-jitter factor.  Counters
accumulate expected-value event counts for every slice.

Slices are cut at every boundary that changes execution characteristics —
phase transitions, dispatcher quantum expiry, frequency settling — so each
slice is stationary and the analytic throughput expression is exact within
the model family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..model.latency import MemoryLatencyProfile, POWER4_LATENCIES
from ..units import check_non_negative, check_positive
from ..workloads.job import Job
from ..workloads.phase import Phase
from .counters import CounterBank
from .idle import HOT_IDLE_PHASE, IdleDetector, IdleStyle
from .os_sched import DEFAULT_QUANTUM_S, Dispatcher
from .rng import make_rng
from .throttle import ThrottleActuator

__all__ = ["CoreConfig", "SimulatedCore", "DAEMON_OVERHEAD_PHASE"]

#: Smallest slice the core will cut (guards against float-degenerate loops).
_MIN_SLICE_S = 1e-12

#: Characteristics of the fvsst daemon's own code when it steals core time:
#: short, CPU-bound bursts touching its log buffers.
DAEMON_OVERHEAD_PHASE = Phase(
    name="__fvsst_overhead__",
    instructions=1e18,
    alpha=1.4,
    l1_stall_cycles_per_instr=0.1,
    n_l2_per_instr=0.001,
)


@dataclass(frozen=True, slots=True)
class CoreConfig:
    """Tunables of a simulated core."""

    #: Log-std-dev of the per-slice memory-latency jitter (0 disables).
    latency_jitter_sigma: float = 0.02
    #: How the core behaves with an empty run queue.
    idle_style: IdleStyle = IdleStyle.HOT_LOOP
    #: Dispatcher time quantum.
    quantum_s: float = DEFAULT_QUANTUM_S
    #: Throttle/frequency settling delay (the paper assumes 0).
    settling_time_s: float = 0.0
    #: Whether the idle detector raises signals (prototype: off).
    idle_detection: bool = False

    def __post_init__(self) -> None:
        check_non_negative(self.latency_jitter_sigma, "latency_jitter_sigma")
        check_positive(self.quantum_s, "quantum_s")
        check_non_negative(self.settling_time_s, "settling_time_s")


class SimulatedCore:
    """One core: dispatcher + actuator + counters + ground-truth execution."""

    def __init__(self, core_id: int, *, initial_freq_hz: float,
                 latencies: MemoryLatencyProfile = POWER4_LATENCIES,
                 config: CoreConfig | None = None,
                 rng: np.random.Generator | int | None = None) -> None:
        self.core_id = core_id
        self.latencies = latencies
        #: Fleet-kernel residency handle, set by :mod:`repro.sim.fleet` while
        #: this core's state lives in fleet columns.  Mutators call
        #: :meth:`_fleet_invalidate` so the fleet re-derives the lane.
        self._fleet = None
        self.config = config or CoreConfig()
        self.dispatcher = Dispatcher(quantum_s=self.config.quantum_s)
        self.actuator = ThrottleActuator(
            initial_freq_hz, settling_time_s=self.config.settling_time_s
        )
        self.counters = CounterBank()
        self.idle_detector = IdleDetector(
            core_id, enabled=self.config.idle_detection
        )
        self._rng = make_rng(rng)
        #: Wall-clock seconds spent in each named phase (Figure 8 residency
        #: uses the scheduler log instead; this is ground truth for tests).
        self.phase_time_s: dict[str, float] = {}
        #: Wall-clock seconds spent executing at each exact frequency.
        self.freq_time_s: dict[float, float] = {}
        #: Daemon time owed but not yet executed (see :meth:`steal_time`).
        self._overhead_debt_s = 0.0
        #: Total daemon time executed on this core.
        self.overhead_executed_s = 0.0
        #: Powered-off flag (the node power-down baseline): an offline core
        #: executes nothing, draws nothing, and its jobs stall in place.
        self._offline = False
        #: Process-variation multiplier on this part's power draw (a leaky
        #: corner-lot part has > 1.0).  Performance is unaffected.
        self._power_scale = 1.0
        #: Block-drawn latency-jitter values, as (sigma, z_draws, jitters).
        #: The batched kernel refills this in blocks; ``_jitter_scale``
        #: consumes it first, so the RNG stream stays aligned no matter how
        #: scalar and batched advances interleave.
        self._jitter_buf: tuple[float, list[float], list[float]] | None = None
        self._jitter_pos = 0

    # -- control interface (what the daemon touches) -----------------------------

    def _fleet_invalidate(self) -> None:
        """Tell the resident fleet (if any) this core's lane is stale."""
        fleet = self._fleet
        if fleet is not None:
            fleet.invalidate_core(self)

    @property
    def config(self) -> CoreConfig:
        """Tunables.  Replacing the config (e.g. a new jitter sigma)
        invalidates any resident fleet lane so the columns re-derive —
        the scalar path picks such changes up implicitly every slice."""
        return self._config

    @config.setter
    def config(self, value: CoreConfig) -> None:
        self._config = value
        self._fleet_invalidate()

    @property
    def offline(self) -> bool:
        """Powered-off flag (the node power-down baseline)."""
        return self._offline

    @offline.setter
    def offline(self, value: bool) -> None:
        self._offline = value
        self._fleet_invalidate()

    @property
    def power_scale(self) -> float:
        """Process-variation multiplier on this part's power draw."""
        return self._power_scale

    @power_scale.setter
    def power_scale(self, value: float) -> None:
        self._power_scale = value
        self._fleet_invalidate()

    def set_frequency(self, freq_hz: float, now_s: float) -> None:
        """Request an operating-point change."""
        self.actuator.set_frequency(freq_hz, now_s)
        self._fleet_invalidate()

    @property
    def frequency_setting_hz(self) -> float:
        """The most recently requested operating point."""
        return self.actuator.requested_hz

    def effective_frequency_hz(self, now_s: float) -> float:
        """The frequency the core is actually running at."""
        return self.actuator.effective_hz(now_s)

    def add_job(self, job: Job) -> None:
        """Assign a job to this core (lifetime affinity)."""
        self.dispatcher.add_job(job)
        self.idle_detector.note_queue_length(self.dispatcher.runnable)
        self._fleet_invalidate()

    @property
    def is_idle(self) -> bool:
        """True when the run queue is empty."""
        return self.dispatcher.runnable == 0

    # -- execution -----------------------------------------------------------------

    def _jitter_scale(self) -> float:
        sigma = self.config.latency_jitter_sigma
        if sigma <= 0.0:
            return 1.0
        buf = self._jitter_buf
        if buf is not None and self._jitter_pos < len(buf[1]):
            i = self._jitter_pos
            self._jitter_pos = i + 1
            if buf[0] == sigma:
                return buf[2][i]
            # Sigma changed under a live buffer: reuse the z draw so the
            # stream stays aligned, recompute the scale.
            return float(np.exp(sigma * buf[1][i]))
        return float(np.exp(sigma * self._rng.standard_normal()))

    def _refill_jitter(self, n: int) -> None:
        """Extend the jitter buffer with ``n`` block-drawn values.

        ``standard_normal(n)`` produces the same stream as ``n`` scalar
        draws and vectorised ``exp`` matches scalar ``exp`` bit-for-bit, so
        buffered values equal what ``_jitter_scale`` would have computed.
        """
        sigma = self.config.latency_jitter_sigma
        z = self._rng.standard_normal(n)
        zs = z.tolist()
        js = np.exp(sigma * z).tolist()
        buf = self._jitter_buf
        if buf is not None and self._jitter_pos < len(buf[1]):
            rest = buf[1][self._jitter_pos:]
            if buf[0] == sigma:
                zs = rest + zs
                js = buf[2][self._jitter_pos:] + js
            else:
                zs = rest + zs
                js = [float(np.exp(sigma * zz)) for zz in rest] + js
        self._jitter_buf = (sigma, zs, js)
        self._jitter_pos = 0

    def _record_residency(self, phase_name: str, freq_hz: float, dt: float) -> None:
        self.phase_time_s[phase_name] = self.phase_time_s.get(phase_name, 0.0) + dt
        self.freq_time_s[freq_hz] = self.freq_time_s.get(freq_hz, 0.0) + dt

    def advance(self, start_s: float, dt: float) -> None:
        """Execute ``dt`` seconds of wall time starting at ``start_s``."""
        check_non_negative(dt, "dt")
        if self.offline:
            self._record_residency("__offline__", 0.0, dt)
            return
        t = start_s
        end = start_s + dt
        if end - t > _MIN_SLICE_S and kernel.try_fast_advance(self, start_s, dt):
            return
        while end - t > _MIN_SLICE_S:
            t = self._advance_slice(t, end)

    def _advance_slice(self, t: float, end: float) -> float:
        """Run one stationary slice; returns the new time."""
        freq = self.actuator.effective_hz(t)
        limit = end - t
        settle_at = self.actuator.next_change_time(t)
        if settle_at is not None:
            limit = min(limit, settle_at - t)
            if limit <= _MIN_SLICE_S:
                # Exactly at the settling boundary: let it settle and retry.
                self.actuator.effective_hz(settle_at)
                return max(t, settle_at)

        if self._overhead_debt_s > _MIN_SLICE_S:
            return self._advance_overhead(t, freq, limit)

        job = self.dispatcher.current_job()
        self.idle_detector.note_queue_length(self.dispatcher.runnable)

        if job is None:
            return self._advance_idle(t, freq, limit)

        job.mark_started(t)
        phase = job.current_phase
        jitter = self._jitter_scale()
        throughput = phase.throughput(self.latencies, freq, latency_scale=jitter)
        if throughput <= 0.0:
            raise SimulationError(f"non-positive throughput on core {self.core_id}")

        slice_limit = self.dispatcher.slice_limit_s()
        time_to_phase_end = job.remaining_in_phase / throughput
        chunk = min(limit, slice_limit, time_to_phase_end)
        chunk = max(chunk, _MIN_SLICE_S)

        if chunk >= time_to_phase_end:
            chunk = time_to_phase_end
            instructions = job.remaining_in_phase
        else:
            instructions = throughput * chunk
        if instructions <= 0.0:
            # Degenerate float corner: force the phase boundary across.
            instructions = job.remaining_in_phase
            chunk = time_to_phase_end

        self.counters.add_execution(phase.counts_for(instructions),
                                    cycles=freq * chunk)
        self._record_residency(phase.name, freq, chunk)
        job.retire(instructions, t + chunk)
        self.dispatcher.account_run(job, chunk, t + chunk)
        self.idle_detector.note_queue_length(self.dispatcher.runnable)
        return t + chunk

    def _advance_idle(self, t: float, freq: float, limit: float) -> float:
        chunk = max(limit, _MIN_SLICE_S)
        if self.config.idle_style is IdleStyle.HOT_LOOP:
            phase = HOT_IDLE_PHASE
            throughput = phase.throughput(self.latencies, freq)
            self.counters.add_execution(
                phase.counts_for(throughput * chunk), cycles=freq * chunk
            )
            self._record_residency(phase.name, freq, chunk)
        else:
            self.counters.add_halted(freq * chunk)
            self._record_residency("__halted__", freq, chunk)
        return t + chunk

    def _advance_overhead(self, t: float, freq: float, limit: float) -> float:
        chunk = max(min(limit, self._overhead_debt_s), _MIN_SLICE_S)
        phase = DAEMON_OVERHEAD_PHASE
        throughput = phase.throughput(self.latencies, freq)
        self.counters.add_execution(
            phase.counts_for(throughput * chunk), cycles=freq * chunk
        )
        self._record_residency(phase.name, freq, chunk)
        self._overhead_debt_s = max(0.0, self._overhead_debt_s - chunk)
        self.overhead_executed_s += chunk
        return t + chunk

    def steal_time(self, dt: float) -> None:
        """Charge ``dt`` seconds of fvsst's own execution to this core
        (Figure 4's overhead).

        The debt is consumed at the *front* of the next :meth:`advance`
        call: jobs make no progress while it drains, and the daemon phase's
        CPU-bound counter footprint slightly pollutes the next prediction —
        both effects the paper's Figure 4 bundles together.
        """
        check_non_negative(dt, "dt")
        self._overhead_debt_s += dt
        self._fleet_invalidate()


# Imported at the bottom: the kernel needs the class above, and `advance`
# only touches it after both modules are fully initialised.
from . import kernel  # noqa: E402
