"""Seeded randomness helpers.

Every stochastic element of the simulator (counter read noise, latency
jitter) draws from a generator created here, so whole experiments are
reproducible from a single integer seed.  Components are given independent
child streams via :func:`spawn_rngs` rather than sharing one generator,
keeping results stable when one component changes how much randomness it
consumes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "spawn_seeds"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise a seed (or pass through an existing generator)."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """``count`` independent child generators from one root seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(count)]


def spawn_seeds(seed: int | None, count: int) -> list[int]:
    """``count`` independent integer child seeds from one root seed.

    Use when passing seeds *down* to components that spawn their own
    streams (machines, agents), keeping the whole tree reproducible.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    root = np.random.SeedSequence(seed)
    return [int(s.generate_state(1)[0]) for s in root.spawn(count)]
