"""The fetch-throttle actuator (Section 6).

The prototype could not scale frequency or voltage on Power4+; it mimicked
frequency scaling by fetch throttling — interspersing fetch cycles with dead
cycles — "assuming throttling yields the same power and performance results
that using different frequencies would, but ignores the settling time".

The actuator therefore exposes a *requested* frequency and an *effective*
frequency.  With ``settling_time_s = 0`` (the paper's assumption) they are
equal; with a positive settling time the effective frequency lags each
request by that long, which the failure-injection tests use to measure how
settling corrupts counter-based prediction.
"""

from __future__ import annotations

from ..errors import FrequencyError, SimulationError
from ..units import check_non_negative, check_positive

__all__ = ["ThrottleActuator"]


class ThrottleActuator:
    """Per-core frequency setter with optional settling delay."""

    def __init__(self, initial_freq_hz: float, *,
                 settling_time_s: float = 0.0) -> None:
        check_positive(initial_freq_hz, "initial_freq_hz")
        check_non_negative(settling_time_s, "settling_time_s")
        self.settling_time_s = settling_time_s
        self._current_hz = float(initial_freq_hz)
        self._pending_hz: float | None = None
        self._pending_at_s: float = 0.0
        #: Number of actuations requested (for overhead accounting).
        self.transitions = 0

    @property
    def requested_hz(self) -> float:
        """The most recently requested frequency."""
        return self._pending_hz if self._pending_hz is not None else self._current_hz

    @property
    def pending(self) -> bool:
        """True while a request is still settling — the effective frequency
        will change at :meth:`next_change_time`, so batched advances that
        assume a constant frequency must take the scalar path."""
        return self._pending_hz is not None

    def set_frequency(self, freq_hz: float, now_s: float) -> None:
        """Request a new frequency at simulation time ``now_s``."""
        check_positive(freq_hz, "freq_hz")
        check_non_negative(now_s, "now_s")
        self._settle(now_s)
        if freq_hz == self.requested_hz:
            return
        self.transitions += 1
        if self.settling_time_s == 0.0:
            self._current_hz = float(freq_hz)
            self._pending_hz = None
        else:
            self._pending_hz = float(freq_hz)
            self._pending_at_s = now_s + self.settling_time_s

    def _settle(self, now_s: float) -> None:
        if self._pending_hz is not None and now_s >= self._pending_at_s:
            self._current_hz = self._pending_hz
            self._pending_hz = None

    def effective_hz(self, now_s: float) -> float:
        """The frequency the core actually runs at, at time ``now_s``."""
        self._settle(now_s)
        return self._current_hz

    def next_change_time(self, now_s: float) -> float | None:
        """When the effective frequency will next change, if a request is
        pending — the core slices its execution at this boundary."""
        self._settle(now_s)
        if self._pending_hz is None:
            return None
        if self._pending_at_s < now_s:
            raise SimulationError("unsettled request in the past")
        return self._pending_at_s

    def validate_in(self, freqs_hz: tuple[float, ...]) -> None:
        """Assert the current request is an allowed operating point."""
        req = self.requested_hz
        if not any(abs(req - f) <= 1e-6 * f for f in freqs_hz):
            raise FrequencyError(
                f"{req:.6g} Hz is not among the allowed operating points"
            )
