"""Fleet-wide columnar advance: one numpy pass over every core in the cluster.

PR 3's kernel batches the chunks *within* one machine, but a cluster span
still costs one Python dispatch per machine: the 1024-node chaos smoke
makes ~3M ``machine.advance`` calls per simulated second, and the per-call
overhead — not the arithmetic — dominates.  This module inverts the
ownership model for the duration of a run: eligible machines become *views*
over a :class:`FleetState`, a structure of arrays holding one lane per core
(frequency, throughput, phase cursor, counter totals, residency, energy
accumulators), and one event-free span advances every lane with ~20 numpy
operations regardless of cluster size.

The contract is PR 3's, extended cluster-wide: **bit-for-bit equality**
with the per-machine path.  The per-span update exploits the same float
identities the kernel proved out:

* every non-crossing lane advances by the same span length, so one vector
  multiply/add per column reproduces the scalar slice exactly (elementwise
  float64 numpy ops equal the scalar IEEE ops);
* lanes that execute nothing carry zero throughput/frequency columns, and
  ``x + 0.0`` is a bitwise no-op for the non-negative totals involved, so
  masked lanes ride along in the same vector adds untouched;
* the few lanes that *do* hit a boundary this span (phase crossing, float
  corner) are found with one vectorized predicate — the same comparison the
  scalar loop makes — and re-run through a literal port of the kernel's
  slice loop against their columns.

Anything the columns cannot reproduce exactly — supply banks, jittered
busy cores, subclassed hooks, pending frequency settling, active idle
listeners, non-LOOP jobs, enabled telemetry — delegates that machine to
``machine.advance`` (the bit-equal reference), counted by
``sim_fleet_fallbacks_total``.

View synchronisation: while resident, a core's running totals live in
columns and the underlying objects lag.  Mutators routed through the core
(``set_frequency``, ``add_job``, ``steal_time``, ``offline``,
``power_scale``, ``steal`` via migrate, idle-detector subscription) bump
:meth:`FleetState.invalidate_core`, and :meth:`CounterBank.snapshot` — the
only way agents observe counters — flushes through an installed hook.
Residency dicts, job progress, and energy ledgers are synchronised by
:func:`flush_machines` (the driver does this when ``run_until`` returns)
or by any ``advance_fleet(..., flush=True)`` call.  Structural mutations
with no hook (attaching a supply bank mid-run, swapping a meter/ledger/
dispatcher instance) require :func:`reset_fleet` first.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..power.energy import EnergyAccumulator, EnergyLedger
from ..telemetry import get_telemetry
from ..units import check_non_negative
from .core import _MIN_SLICE_S, SimulatedCore
from .idle import HOT_IDLE_PHASE, IdleStyle
from .kernel import (_BUSY, _CHUNKED, _IDLE, _OFFLINE, _classify,
                     _detector_passive, _hooks_intact)
from .machine import SMPMachine
from .os_sched import Dispatcher
from .powermeter import PowerMeter
from .throttle import ThrottleActuator

__all__ = ["FleetState", "advance_fleet", "flush_machines", "reset_fleet",
           "fleet_stats"]

#: Process-wide tallies (tests and quick diagnostics; the telemetry
#: counters sim_fleet_advances_total / sim_fleet_fallbacks_total carry the
#: same numbers through the metrics registry).
fleet_stats = {"advances": 0, "fallbacks": 0}

_tel_pair = None


def _bump(advances: int, fallbacks: int) -> None:
    global _tel_pair
    if advances:
        fleet_stats["advances"] += advances
    if fallbacks:
        fleet_stats["fallbacks"] += fallbacks
    tel = get_telemetry()
    pair = _tel_pair
    if pair is None or pair[0] is not tel:
        m = tel.metrics
        pair = (tel,
                m.counter("sim_fleet_advances_total",
                          "Machine-spans advanced through fleet columns"),
                m.counter("sim_fleet_fallbacks_total",
                          "Machine-spans delegated to the per-machine path"))
        _tel_pair = pair
    if advances:
        pair[1].inc(advances)
    if fallbacks:
        pair[2].inc(fallbacks)


class _Evict(Exception):
    """A lane can no longer be represented in columns; rebuild the fleet."""


class FleetState:
    """Structure-of-arrays state for every resident core across machines.

    Lanes are float64 columns indexed by core; per-lane Python metadata
    (kind, job, phase table, pending residency) lives in parallel lists.
    Machines that fail eligibility are *delegates*: they advance through
    ``machine.advance`` each span, bit-equal by construction.
    """

    def __init__(self, machines: list) -> None:
        self.machines = machines
        self._valid = True
        self._dirty: set[SimulatedCore] = set()
        self.resident: list[SMPMachine] = []
        self.delegates: list = []
        self._recheck: list[SMPMachine] = []

        # Steal machines already resident in another fleet (overlapping
        # machine lists): the old fleet flushes and dies, objects become
        # authoritative again, and this build reads consistent state.
        for m in machines:
            old = getattr(m, "_fleet_ref", None)
            if old is not None and old is not self and old._valid:
                old.detach()

        now = None
        for m in machines:
            blocker = self._residency_blocker(m, now)
            if blocker is None:
                if now is None:
                    now = m._now_s
                self.resident.append(m)
            else:
                self.delegates.append(m)
                if blocker == "transient":
                    self._recheck.append(m)
        self.now = now if now is not None else machines[0]._now_s

        n = sum(len(m.cores) for m in self.resident)
        self.n = n
        self.cores: list[SimulatedCore] = []
        self.meters: list[PowerMeter] = []
        for m in self.resident:
            self.cores.extend(m.cores)
            self.meters.extend([m.meter] * len(m.cores))
        self._lane_of = {c: i for i, c in enumerate(self.cores)}

        self.freq = np.zeros(n)
        self.thr = np.zeros(n)
        self.r2 = np.zeros(n)
        self.r3 = np.zeros(n)
        self.rm = np.zeros(n)
        self.rl1 = np.zeros(n)
        self.pinstr = np.zeros(n)
        self.ptol = np.zeros(n)
        self.prog = np.zeros(n)
        self.retired = np.zeros(n)
        self.cur_res = np.zeros(n)
        self.ft = np.zeros(n)
        self.busy = np.zeros(n, dtype=bool)
        # Counter totals: instructions, cycles, n_l2, n_l3, n_mem,
        # l1_stall_cycles, halted_cycles (CounterBank field order).
        self.cnt = np.zeros((7, n))
        self.hfreq: np.ndarray | None = None

        self.kind = [0] * n
        self.jobs: list = [None] * n
        self.pdata: list = [None] * n
        self.pidx = [0] * n
        self.cur_name: list[str | None] = [None] * n
        self.ft_key = [0.0] * n
        self.pending: list[dict | None] = [None] * n
        self._bank_hooks: list = [None] * n
        self._chunked: set[int] = set()
        self._offline: set[int] = set()
        self._halt: set[int] = set()

        # Energy lanes: one per ledger account across resident machines,
        # materialised exactly the way the scalar first chunk would.
        e_accs: list[EnergyAccumulator] = []
        e_pow: list[float] = []
        e_last: list[float] = []
        e_energy: list[float] = []
        self.elane = [-1] * n
        lane = 0
        for m in self.resident:
            meter = m.meter
            powers = {f"core{c.core_id}": meter.core_power_w(c, self.now)
                      for c in m.cores}
            powers["non_cpu"] = meter.non_cpu_power_w
            ledger = m.ledger
            for name in powers:
                ledger.account(name)
            by_name = {}
            for name, acc in ledger.accounts.items():
                by_name[name] = len(e_accs)
                e_accs.append(acc)
                e_pow.append(powers.get(name, 0.0))
                e_last.append(acc.last_time_s)
                e_energy.append(acc.energy_j)
            for c in m.cores:
                self.elane[lane] = by_name[f"core{c.core_id}"]
                lane += 1
        self.e_accs = e_accs
        self.e_pow = np.array(e_pow) if e_accs else np.zeros(0)
        self.e_last = np.array(e_last) if e_accs else np.zeros(0)
        self.e_energy = np.array(e_energy) if e_accs else np.zeros(0)

        for i in range(n):
            self._setup_lane(i, self.now)
        for m in self.resident:
            m._fleet_ref = self

    # -- eligibility ---------------------------------------------------------------

    @staticmethod
    def _residency_blocker(m, now_ref) -> str | None:
        """None when ``m`` can live in columns, else why not.  "transient"
        blockers (pending settling, a ONCE job that will drain) are
        rechecked each span; anything structural stays delegated until the
        fleet is rebuilt."""
        if type(m) is not SMPMachine:
            return "type"
        if m.supply_bank is not None:
            return "bank"
        if type(m.ledger) is not EnergyLedger or type(m.meter) is not PowerMeter:
            return "component"
        if any(type(a) is not EnergyAccumulator
               for a in m.ledger.accounts.values()):
            return "component"
        if now_ref is not None and m._now_s != now_ref:
            return "desync"
        transient = False
        for c in m.cores:
            mode = _classify(c)
            if mode is None:
                if not _hooks_intact(c):
                    return "hooks"
                act = c.actuator
                if type(act) is not ThrottleActuator:
                    return "actuator"
                if not _detector_passive(c.idle_detector):
                    return "detector"
                if type(c.dispatcher) is not Dispatcher:
                    return "dispatcher"
                # Remaining causes: pending settling or a non-LOOP job.
                transient = True
                continue
            if mode == _BUSY and c.config.latency_jitter_sigma > 0.0:
                return "jitter"
            if m.meter.core_power_w(c, m._now_s) < 0.0:
                return "power"
        return "transient" if transient else None

    # -- lane lifecycle --------------------------------------------------------------

    def invalidate_core(self, core: SimulatedCore) -> None:
        """Mark one core's lane stale (re-derived at the next span)."""
        self._dirty.add(core)

    def _install_bank_hook(self, i: int) -> None:
        bank = self.cores[i].counters
        hook = self._bank_hooks[i]
        if hook is None:
            def hook(fleet=self, lane=i):
                if fleet._valid:
                    fleet._flush_counters(lane)
            self._bank_hooks[i] = hook
        bank._fleet_flush = hook

    def _remove_bank_hook(self, i: int) -> None:
        hook = self._bank_hooks[i]
        if hook is None:
            return
        d = getattr(self.cores[i].counters, "__dict__", None)
        if d is not None and d.get("_fleet_flush") is hook:
            del d["_fleet_flush"]

    def _setup_lane(self, i: int, t0: float) -> None:
        core = self.cores[i]
        old = core._fleet
        if old is not None and old is not self and old._valid:
            old.detach()
        mode = _classify(core)
        if mode is None:
            raise _Evict
        self._chunked.discard(i)
        self._offline.discard(i)
        if i in self._halt:
            self._halt.discard(i)
            self.hfreq[i] = 0.0
        self.kind[i] = mode
        self.busy[i] = False
        self.jobs[i] = None
        self.pdata[i] = None
        pend = self.pending[i]
        if pend:
            pend.clear()
        self.freq[i] = 0.0
        self.thr[i] = 0.0
        self.r2[i] = self.r3[i] = self.rm[i] = self.rl1[i] = 0.0
        self.pinstr[i] = np.inf
        self.ptol[i] = np.inf
        self.prog[i] = 0.0
        self.retired[i] = 0.0
        self.cur_res[i] = 0.0
        self.ft[i] = 0.0

        if mode == _CHUNKED:
            # Object-authoritative lane: core.advance runs each span and
            # keeps its own counters/residency; its columns stay unused.
            self._chunked.add(i)
            self.cur_name[i] = None
            self._remove_bank_hook(i)
        elif mode == _OFFLINE:
            self._offline.add(i)
            self.cur_name[i] = "__offline__"
            self.ft_key[i] = 0.0
            self.cur_res[i] = core.phase_time_s.get("__offline__", 0.0)
            self.ft[i] = core.freq_time_s.get(0.0, 0.0)
            self._load_counters(i)
            self._install_bank_hook(i)
        else:
            freq = core.actuator.effective_hz(t0)
            if mode == _IDLE:
                core.idle_detector.note_queue_length(0)
                if core.config.idle_style is IdleStyle.HOT_LOOP:
                    phase = HOT_IDLE_PHASE
                    self.thr[i] = phase.throughput(core.latencies, freq)
                    self.freq[i] = freq
                    self.r2[i] = phase.n_l2_per_instr
                    self.r3[i] = phase.n_l3_per_instr
                    self.rm[i] = phase.n_mem_per_instr
                    self.rl1[i] = phase.l1_stall_cycles_per_instr
                    self.cur_name[i] = phase.name
                else:
                    if self.hfreq is None:
                        self.hfreq = np.zeros(self.n)
                    self._halt.add(i)
                    self.hfreq[i] = freq
                    self.cur_name[i] = "__halted__"
            else:  # _BUSY
                if core.config.latency_jitter_sigma > 0.0:
                    raise _Evict
                job = core.dispatcher._queue[0]
                core.idle_detector.note_queue_length(1)
                job.mark_started(t0)
                lat = core.latencies
                pdata = []
                for p in job.phases:
                    core_cpi = (1.0 / p.alpha
                                + p.l1_stall_cycles_per_instr
                                + p.unmodeled_stall_cycles_per_instr)
                    mem_time = (p.n_l2_per_instr * lat.t_l2_s
                                + p.n_l3_per_instr * lat.t_l3_s
                                + p.n_mem_per_instr * lat.t_mem_s)
                    pdata.append((p.name, p.instructions, core_cpi, mem_time,
                                  p.n_l2_per_instr, p.n_l3_per_instr,
                                  p.n_mem_per_instr,
                                  p.l1_stall_cycles_per_instr))
                pidx = job.phase_index
                name, pinstr, ccpi, mem, r2, r3, rm, rl1 = pdata[pidx]
                thr = freq / (ccpi + mem * freq)
                if thr <= 0.0:
                    raise _Evict  # the scalar path raises; let it
                self.busy[i] = True
                self.jobs[i] = job
                self.pdata[i] = pdata
                self.pidx[i] = pidx
                self.freq[i] = freq
                self.thr[i] = thr
                self.r2[i] = r2
                self.r3[i] = r3
                self.rm[i] = rm
                self.rl1[i] = rl1
                self.pinstr[i] = pinstr
                self.ptol[i] = pinstr * (1.0 - 1e-12)
                self.prog[i] = job.phase_progress
                self.retired[i] = job.instructions_retired
                self.cur_name[i] = name
                if self.pending[i] is None:
                    self.pending[i] = {}
            self.ft_key[i] = freq
            self.cur_res[i] = core.phase_time_s.get(self.cur_name[i], 0.0)
            self.ft[i] = core.freq_time_s.get(freq, 0.0)
            self._load_counters(i)
            self._install_bank_hook(i)

        k = self.elane[i]
        if k >= 0:
            pw = self.meters[i].core_power_w(core, t0)
            if pw < 0.0:
                raise _Evict  # the scalar ledger raises; let it
            self.e_pow[k] = pw
        core._fleet = self
        core.idle_detector._fleet_invalidate = core._fleet_invalidate

    def _load_counters(self, i: int) -> None:
        b = self.cores[i].counters
        cnt = self.cnt
        cnt[0, i] = b.instructions
        cnt[1, i] = b.cycles
        cnt[2, i] = b.n_l2
        cnt[3, i] = b.n_l3
        cnt[4, i] = b.n_mem
        cnt[5, i] = b.l1_stall_cycles
        cnt[6, i] = b.halted_cycles

    def _flush_counters(self, i: int) -> None:
        b = self.cores[i].counters
        cnt = self.cnt
        b.instructions = float(cnt[0, i])
        b.cycles = float(cnt[1, i])
        b.n_l2 = float(cnt[2, i])
        b.n_l3 = float(cnt[3, i])
        b.n_mem = float(cnt[4, i])
        b.l1_stall_cycles = float(cnt[5, i])
        b.halted_cycles = float(cnt[6, i])

    def _flush_lane(self, i: int) -> None:
        if self.kind[i] == _CHUNKED:
            return
        self._flush_counters(i)
        core = self.cores[i]
        pt = core.phase_time_s
        pend = self.pending[i]
        if pend:
            pt.update(pend)
            pend.clear()
        name = self.cur_name[i]
        cur = float(self.cur_res[i])
        key = self.ft_key[i]
        ftd = core.freq_time_s
        ftv = float(self.ft[i])
        if self.kind[i] == _BUSY:
            # The scalar loop's commit always writes the current phase and
            # frequency keys, even at 0.0 right after a crossing.
            pt[name] = cur
            ftd[key] = ftv
            job = self.jobs[i]
            job.phase_progress = float(self.prog[i])
            job.instructions_retired = float(self.retired[i])
        else:
            # Idle/offline lanes only create their residency keys once a
            # real span ran, exactly like the scalar path.
            if name in pt or cur != 0.0:
                pt[name] = cur
            if key in ftd or ftv != 0.0:
                ftd[key] = ftv

    def flush(self) -> None:
        """Write every lane back to its objects (idempotent; the columns
        stay authoritative until :meth:`detach`)."""
        for i in range(self.n):
            self._flush_lane(i)
        e = self.e_energy
        last = self.e_last
        for k, acc in enumerate(self.e_accs):
            acc.energy_j = float(e[k])
            acc.last_time_s = float(last[k])

    def detach(self) -> None:
        """Flush and dissolve: objects become authoritative again."""
        if not self._valid:
            return
        self.flush()
        self._valid = False
        for i, core in enumerate(self.cores):
            self._remove_bank_hook(i)
            if core._fleet is self:
                core._fleet = None
                core.idle_detector._fleet_invalidate = None
        for m in self.resident:
            if getattr(m, "_fleet_ref", None) is self:
                m._fleet_ref = None

    # -- per-span processing -----------------------------------------------------------

    def prepare(self) -> bool:
        """Re-derive dirty lanes; False means rebuild the whole fleet."""
        if self._dirty:
            t0 = self.now
            dirty = self._dirty
            self._dirty = set()
            for core in dirty:
                i = self._lane_of.get(core)
                if i is None:
                    continue
                self._flush_lane(i)
                try:
                    self._setup_lane(i, t0)
                except _Evict:
                    return False
        if self._recheck:
            for m in self._recheck:
                if self._residency_blocker(m, self.now) is None:
                    return False
        return True

    def advance(self, dt: float) -> bool:
        """One event-free span over all resident lanes.  Returns False
        (caller takes the scalar path) on the float corners where the
        scalar loop's span arithmetic would not collapse to one slice."""
        t0 = self.now
        e2 = t0 + dt
        eff = e2 - t0
        n = self.n
        if n:
            se = t0 + eff
            limit = se - t0
            if limit != eff or se - (t0 + limit) > _MIN_SLICE_S:
                return False
            for i in self._chunked:
                self.cores[i].advance(t0, eff)
            if eff > _MIN_SLICE_S:
                thr = self.thr
                prog = self.prog
                with np.errstate(divide="ignore", invalid="ignore"):
                    ttpe = (self.pinstr - prog) / thr
                instr = thr * eff
                prog2 = prog + instr
                bad = ttpe <= eff
                bad |= prog2 >= self.ptol
                bad |= (instr <= 0.0) & self.busy
                nbad = np.count_nonzero(bad)
                if nbad:
                    keep = ~bad
                    instr = np.where(keep, instr, 0.0)
                    add = np.where(keep, eff, 0.0)
                    self.prog = np.where(keep, prog2, prog)
                else:
                    add = eff
                    self.prog = prog2
                cnt = self.cnt
                cnt[0] += instr
                cnt[1] += self.freq * add
                cnt[2] += self.r2 * instr
                cnt[3] += self.r3 * instr
                cnt[4] += self.rm * instr
                cnt[5] += self.rl1 * instr
                if self._halt:
                    cnt[6] += self.hfreq * add
                self.cur_res += add
                self.ft += add
                self.retired += instr
                if nbad:
                    for i in np.nonzero(bad)[0]:
                        self._advance_busy_lane(int(i), t0, eff)
            elif self._offline:
                idx = list(self._offline)
                self.cur_res[idx] += eff
                self.ft[idx] += eff
        if self.e_accs:
            self.e_energy += self.e_pow * (e2 - self.e_last)
            self.e_last.fill(e2)
        self.now = e2
        for m in self.resident:
            m._now_s = e2
        return True

    def _advance_busy_lane(self, i: int, start: float, dt: float) -> None:
        """Literal port of the kernel's inlined slice loop (sigma == 0)
        against this lane's columns — runs only for lanes that hit a phase
        boundary or float corner this span."""
        core = self.cores[i]
        job = self.jobs[i]
        pdata = self.pdata[i]
        nph = len(pdata)
        pidx = self.pidx[i]
        freq = float(self.freq[i])
        cnt = self.cnt
        prog = float(self.prog[i])
        retired = float(self.retired[i])
        iters = job.iterations
        ci = float(cnt[0, i])
        cc = float(cnt[1, i])
        c2 = float(cnt[2, i])
        c3 = float(cnt[3, i])
        cm = float(cnt[4, i])
        cl1 = float(cnt[5, i])
        pt = core.phase_time_s
        res = self.pending[i]
        name, pinstr, ccpi, mem, r2, r3, rm, rl1 = pdata[pidx]
        cur_res = float(self.cur_res[i])
        ft = float(self.ft[i])
        min_slice = _MIN_SLICE_S
        t = start
        end = start + dt
        try:
            while end - t > min_slice:
                rem = pinstr - prog
                cpi = ccpi + mem * freq
                throughput = freq / cpi
                if throughput <= 0.0:
                    raise SimulationError(
                        f"non-positive throughput on core {core.core_id}")
                ttpe = rem / throughput
                limit = end - t
                chunk = limit if limit < ttpe else ttpe
                if chunk < min_slice:
                    chunk = min_slice
                if chunk >= ttpe:
                    chunk = ttpe
                    instr = rem
                else:
                    instr = throughput * chunk
                if instr <= 0.0:
                    # Degenerate float corner: force the boundary across.
                    instr = rem
                    chunk = ttpe
                ci += instr
                cc += freq * chunk
                c2 += r2 * instr
                c3 += r3 * instr
                cm += rm * instr
                cl1 += rl1 * instr
                cur_res += chunk
                ft += chunk
                prog += instr
                retired += instr
                if prog >= pinstr * (1.0 - 1e-12):
                    prog = 0.0
                    if pidx + 1 < nph:
                        pidx += 1
                    else:
                        pidx = 0
                        iters += 1
                    res[name] = cur_res
                    name, pinstr, ccpi, mem, r2, r3, rm, rl1 = pdata[pidx]
                    nxt = res.get(name)
                    if nxt is None:
                        nxt = pt.get(name, 0.0)
                    cur_res = nxt
                t = t + chunk
        finally:
            cnt[0, i] = ci
            cnt[1, i] = cc
            cnt[2, i] = c2
            cnt[3, i] = c3
            cnt[4, i] = cm
            cnt[5, i] = cl1
            self.prog[i] = prog
            self.retired[i] = retired
            self.cur_res[i] = cur_res
            self.ft[i] = ft
            self.pidx[i] = pidx
            self.cur_name[i] = name
            self.pinstr[i] = pinstr
            self.ptol[i] = pinstr * (1.0 - 1e-12)
            self.thr[i] = freq / (ccpi + mem * freq)
            self.r2[i] = r2
            self.r3[i] = r3
            self.rm[i] = rm
            self.rl1[i] = rl1
            job.phase_index = pidx
            job.iterations = iters


# -- module-level dispatch ---------------------------------------------------------


def _get_fleet(machines: list) -> FleetState:
    anchor = machines[0]
    cached = anchor.__dict__.get("_fleet_cache")
    if cached is not None:
        flist, fleet = cached
        if fleet._valid and (flist is machines or flist == machines):
            return fleet
    fleet = FleetState(machines)
    anchor.__dict__["_fleet_cache"] = (machines, fleet)
    return fleet


def advance_fleet(machines, dt: float, *, flush: bool = True) -> None:
    """Advance every machine across one event-free span of ``dt`` seconds,
    resident lanes through fleet columns and the rest through the
    per-machine reference path.

    ``flush=False`` leaves resident state in the columns (the driver's hot
    loop does this and flushes once when ``run_until`` returns); counters
    still synchronise on snapshot through the installed bank hook.
    """
    check_non_negative(dt, "dt")
    if not isinstance(machines, list):
        machines = list(machines)
    if dt == 0.0 or not machines:
        return
    if get_telemetry().enabled:
        _bump(0, len(machines))
        for m in machines:
            m.advance(dt)
        return
    fleet = None
    for _ in range(2):
        cand = _get_fleet(machines)
        if cand.prepare():
            fleet = cand
            break
        cand.detach()
    advanced = False
    if fleet is not None:
        try:
            advanced = fleet.advance(dt)
        except BaseException:
            fleet.flush()
            raise
    if not advanced:
        if fleet is not None:
            fleet.detach()
        _bump(0, len(machines))
        for m in machines:
            m.advance(dt)
        return
    _bump(len(fleet.resident), len(fleet.delegates))
    try:
        for m in fleet.delegates:
            m.advance(dt)
    except BaseException:
        fleet.flush()
        raise
    if flush:
        fleet.flush()


def flush_machines(machines) -> None:
    """Synchronise machine objects with any live fleet columns."""
    if not isinstance(machines, list):
        machines = list(machines)
    if not machines:
        return
    cached = machines[0].__dict__.get("_fleet_cache")
    if cached is not None and cached[1]._valid and \
            (cached[0] is machines or cached[0] == machines):
        cached[1].flush()


def reset_fleet(machines) -> None:
    """Dissolve any fleet over ``machines`` (flushes first).  Call before
    structural mutations the invalidation hooks cannot see — attaching a
    supply bank mid-run, swapping a meter/ledger/dispatcher instance."""
    if not isinstance(machines, list):
        machines = list(machines)
    if not machines:
        return
    cached = machines[0].__dict__.get("_fleet_cache")
    if cached is not None:
        if cached[1]._valid:
            cached[1].detach()
        del machines[0].__dict__["_fleet_cache"]
