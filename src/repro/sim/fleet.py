"""Fleet-wide columnar advance: one numpy pass over every core in the cluster.

PR 3's kernel batches the chunks *within* one machine, but a cluster span
still costs one Python dispatch per machine: the 1024-node chaos smoke
makes ~3M ``machine.advance`` calls per simulated second, and the per-call
overhead — not the arithmetic — dominates.  This module inverts the
ownership model for the duration of a run: eligible machines become *views*
over a :class:`FleetState`, a structure of arrays holding one lane per core
(frequency, throughput, phase cursor, counter totals, residency, energy
accumulators), and one event-free span advances every lane with ~20 numpy
operations regardless of cluster size.

The contract is PR 3's, extended cluster-wide: **bit-for-bit equality**
with the per-machine path.  The per-span update exploits the same float
identities the kernel proved out:

* every non-crossing lane advances by the same span length, so one vector
  multiply/add per column reproduces the scalar slice exactly (elementwise
  float64 numpy ops equal the scalar IEEE ops);
* lanes that execute nothing carry zero throughput/frequency columns, and
  ``x + 0.0`` is a bitwise no-op for the non-negative totals involved, so
  masked lanes ride along in the same vector adds untouched;
* the few lanes that *do* hit a boundary this span (phase crossing, float
  corner) are found with one vectorized predicate — the same comparison the
  scalar loop makes — and re-run through a literal port of the kernel's
  slice loop against their columns.

Residency matrix (what lives in columns):

* **Jittered busy cores** are resident: each span draws one value per lane
  through the core's stream-aligned ``_jitter_buf`` (the kernel's block
  refill-64/refill-256 discipline, verbatim), folds it into that lane's
  throughput, and lets the vector pass carry it — draw order is identical
  to the scalar path.
* **Supply-banked machines** are resident: their lanes are excluded from
  the whole-span vector pass and instead chunked at the machine's
  observation interval, replaying :meth:`SupplyBank.plan_constant_span` /
  :meth:`SupplyBank.observe` through the same bisect machinery the
  per-machine kernel uses.  A span a *raising* cascade would cut delegates
  the whole fleet for that span, preserving the scalar loop's partial
  advance and exception order.
* **Enabled telemetry** is resident: per-lane ``sim_*`` counters accumulate
  in columns and flush to the registry at flush/snapshot boundaries, and
  phase-transition events are emitted at crossings with the scalar payload.
  Per-machine event order and every counter value match the scalar path
  bit-for-bit; only the interleaving of events *across* machines within
  one span is unspecified.
* **ONCE jobs (serving requests)** are resident on unbanked machines: job
  completion is just another columnar crossing.  The vector predicate that
  finds phase boundaries also finds the last phase's end; the crossing
  replay completes the job, pops the dispatch queue, and runs the rest of
  the span as the scalar's hot-idle (or halted) loop — ``started_at_s`` /
  ``completed_at_s`` stamps, event payloads, counters, and RNG draw order
  all identical to the scalar path.  The drained lane re-derives at the
  next span start (idle columns, fresh power), exactly when the scalar
  re-reads ``core_power_w``.
* **Pending frequency settling** stays resident on unbanked machines as a
  *volatile* chunked lane: ``core.advance`` cuts the settle boundary each
  span and the lane re-derives (power included) every span start.  Queues
  mixing a ONCE job with other work ride the same volatile-chunked path
  until they drain back into columns.

What still cannot live in columns — subclassed machine/core/component
hooks, desynchronised machine clocks, active idle listeners,
negative-power meters, a supply bank *shared* between machines, and
banked machines mid-settle or holding ONCE work (their chunk walk prices
the whole span's demand up front) — delegates that machine to
``machine.advance`` (the bit-equal reference), counted by
``sim_fleet_fallbacks_total`` and broken down per reason by its
``reason``-labelled series (see :func:`fallback_breakdown`).

View synchronisation: while resident, a core's running totals live in
columns and the underlying objects lag.  Mutators routed through the core
(``set_frequency``, ``add_job``, ``steal_time``, ``offline``,
``power_scale``, ``config`` replacement, ``steal`` via migrate,
idle-detector subscription) bump :meth:`FleetState.invalidate_core`, and
:meth:`CounterBank.snapshot` — the only way agents observe counters —
flushes through an installed hook.  Residency dicts, job progress, and
energy ledgers are synchronised by :func:`flush_machines` (the driver does
this when ``run_until`` returns) or by any ``advance_fleet(...,
flush=True)`` call.  Structural mutations with no hook (attaching a supply
bank mid-run, swapping a meter/ledger/dispatcher instance) require
:func:`reset_fleet` first.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..power.energy import EnergyAccumulator, EnergyLedger
from ..power.supply import SupplyBank
from ..telemetry import EVENT_PHASE_TRANSITION, get_telemetry
from ..units import check_non_negative
from ..workloads.job import Job, JobState, LoopMode
from .core import _MIN_SLICE_S, SimulatedCore
from .counters import CounterBank
from .idle import HOT_IDLE_PHASE, IdleStyle
from .kernel import (_BUSY, _CHUNKED, _IDLE, _OFFLINE, _acc, _classify,
                     _detector_passive, _hooks_intact, _phases_plain)
from .machine import SMPMachine, observation_bounds
from .os_sched import Dispatcher
from .powermeter import PowerMeter
from .throttle import ThrottleActuator

__all__ = ["FleetState", "advance_fleet", "flush_machines", "reset_fleet",
           "fleet_stats", "fleet_fallback_reasons", "fallback_breakdown"]

#: Process-wide tallies (tests and quick diagnostics; the telemetry
#: counters sim_fleet_advances_total / sim_fleet_fallbacks_total carry the
#: same numbers through the metrics registry).
fleet_stats = {"advances": 0, "fallbacks": 0}

#: Process-wide per-reason fallback tallies (mirrored by the
#: ``reason``-labelled ``sim_fleet_fallbacks_total`` series).
fleet_fallback_reasons: dict[str, int] = {}


def fallback_breakdown() -> dict[str, int]:
    """Copy of the per-reason fallback tallies (``reason`` -> count)."""
    return dict(fleet_fallback_reasons)


#: Eligibility blockers mapped to the fallback-reason label they report
#: under.  Overridden methods/components collapse into "subclass".
_REASON_LABEL = {
    "type": "subclass",
    "hooks": "subclass",
    "component": "subclass",
    "actuator": "subclass",
    "detector": "subclass",
    "dispatcher": "subclass",
    "bank": "bank",
    "desync": "desync",
    "power": "power",
    "transient": "transient",
}

_tel_cache = None


def _bump(advances: int, fallbacks: dict[str, int] | None = None) -> None:
    """Tally machine-spans advanced/delegated; ``fallbacks`` maps reason
    label -> count.  Registry counters update at span boundaries (this is
    called once per ``advance_fleet`` span), never from the hot loops."""
    global _tel_cache
    nfb = 0
    if fallbacks:
        for reason, k in fallbacks.items():
            nfb += k
            fleet_fallback_reasons[reason] = \
                fleet_fallback_reasons.get(reason, 0) + k
    if advances:
        fleet_stats["advances"] += advances
    if nfb:
        fleet_stats["fallbacks"] += nfb
    tel = get_telemetry()
    cache = _tel_cache
    if cache is None or cache[0] is not tel:
        m = tel.metrics
        cache = (tel,
                 m.counter("sim_fleet_advances_total",
                           "Machine-spans advanced through fleet columns"),
                 m.counter("sim_fleet_fallbacks_total",
                           "Machine-spans delegated to the per-machine path"),
                 {})
        _tel_cache = cache
    if advances:
        cache[1].inc(advances)
    if nfb:
        cache[2].inc(nfb)
        by_reason = cache[3]
        for reason, k in fallbacks.items():
            c = by_reason.get(reason)
            if c is None:
                c = cache[0].metrics.counter(
                    "sim_fleet_fallbacks_total",
                    "Machine-spans delegated to the per-machine path",
                    labels={"reason": reason})
                by_reason[reason] = c
            c.inc(k)


class _Evict(Exception):
    """A lane can no longer be represented in columns; rebuild the fleet."""


def _classify_lane(core: SimulatedCore, t0: float,
                   banked: bool) -> tuple[int, bool] | None:
    """Fleet-side extension of :func:`kernel._classify`.

    Returns ``(mode, volatile)`` or None (the machine must delegate).
    Beyond the kernel's modes, this admits what only the fleet layer can
    keep resident:

    * a single plain-phase :class:`Job` of *any* loop mode is ``_BUSY`` —
      a ONCE job's completion is handled as a columnar crossing by
      :meth:`FleetState._advance_busy_lane`;
    * pending frequency settling, and queues that mix a ONCE job with
      other work, are ``_CHUNKED`` *volatile* lanes: ``core.advance``
      handles the interior boundary each span, and the lane re-derives
      (power included) at every span start — exactly when the scalar
      ``machine._advance_to`` would re-read ``core_power_w``.

    Banked machines keep the kernel's stricter gate: their chunk walk
    prices the whole span's demand up front, which a mid-span completion
    or settle would invalidate, so they delegate until drained.
    """
    mode = _classify(core)
    if mode is not None:
        return mode, False
    if banked:
        return None
    if not _hooks_intact(core) or core.offline:
        return None
    act = core.actuator
    if type(act) is not ThrottleActuator:
        return None
    if not _detector_passive(core.idle_detector):
        return None
    if type(core.dispatcher) is not Dispatcher:
        return None
    queue = core.dispatcher._queue
    for job in queue:
        if type(job) is not Job:
            return None
    # Observe (and passively settle) through the public actuator API —
    # the same call the scalar path's first slice makes at span start.
    act.effective_hz(t0)
    if act.pending:
        return _CHUNKED, True
    if core._overhead_debt_s > _MIN_SLICE_S:
        return _CHUNKED, True
    if type(core.counters) is not CounterBank:
        return _CHUNKED, True
    if not queue:
        return _IDLE, False
    if len(queue) == 1 and _phases_plain(queue[0]):
        return _BUSY, False
    return _CHUNKED, True


class FleetState:
    """Structure-of-arrays state for every resident core across machines.

    Lanes are float64 columns indexed by core; per-lane Python metadata
    (kind, job, phase table, pending residency) lives in parallel lists.
    Machines that fail eligibility are *delegates*: they advance through
    ``machine.advance`` each span, bit-equal by construction.
    """

    def __init__(self, machines: list) -> None:
        self.machines = machines
        self._valid = True
        self._dirty: set[SimulatedCore] = set()
        self.resident: list[SMPMachine] = []
        self.delegates: list = []
        self.delegate_reasons: dict[str, int] = {}
        self._recheck: list[SMPMachine] = []
        #: Why the last ``advance`` returned False ("corner" or "bank").
        self._span_blocker = "corner"

        # Steal machines already resident in another fleet (overlapping
        # machine lists): the old fleet flushes and dies, objects become
        # authoritative again, and this build reads consistent state.
        for m in machines:
            old = getattr(m, "_fleet_ref", None)
            if old is not None and old is not self and old._valid:
                old.detach()

        # A supply bank shared between machines sees interleaved per-chunk
        # observations in the scalar path that the per-machine banked walk
        # cannot replay; those machines stay delegates.
        seen: dict[int, int] = {}
        for m in machines:
            b = getattr(m, "supply_bank", None)
            if b is not None:
                seen[id(b)] = seen.get(id(b), 0) + 1
        self._shared_banks = {bid for bid, k in seen.items() if k > 1}

        now = None
        for m in machines:
            blocker = self._residency_blocker(m, now)
            if blocker is None:
                if now is None:
                    now = m._now_s
                self.resident.append(m)
            else:
                self.delegates.append(m)
                label = _REASON_LABEL.get(blocker, blocker)
                self.delegate_reasons[label] = \
                    self.delegate_reasons.get(label, 0) + 1
                if blocker == "transient":
                    self._recheck.append(m)
        self.now = now if now is not None else machines[0]._now_s

        n = sum(len(m.cores) for m in self.resident)
        self.n = n
        self.cores: list[SimulatedCore] = []
        self.meters: list[PowerMeter] = []
        for m in self.resident:
            self.cores.extend(m.cores)
            self.meters.extend([m.meter] * len(m.cores))
        self._lane_of = {c: i for i, c in enumerate(self.cores)}

        self.freq = np.zeros(n)
        self.thr = np.zeros(n)
        self.r2 = np.zeros(n)
        self.r3 = np.zeros(n)
        self.rm = np.zeros(n)
        self.rl1 = np.zeros(n)
        self.pinstr = np.zeros(n)
        self.ptol = np.zeros(n)
        self.prog = np.zeros(n)
        self.retired = np.zeros(n)
        self.cur_res = np.zeros(n)
        self.ft = np.zeros(n)
        self.busy = np.zeros(n, dtype=bool)
        # Counter totals: instructions, cycles, n_l2, n_l3, n_mem,
        # l1_stall_cycles, halted_cycles (CounterBank field order).
        self.cnt = np.zeros((7, n))
        self.hfreq: np.ndarray | None = None

        self.kind = [0] * n
        self.jobs: list = [None] * n
        self.pdata: list = [None] * n
        self.pidx = [0] * n
        self.cur_name: list[str | None] = [None] * n
        self.ft_key = [0.0] * n
        self.pending: list[dict | None] = [None] * n
        self._bank_hooks: list = [None] * n
        self._chunked: set[int] = set()
        #: Chunked lanes whose classification/power can change without an
        #: invalidation hook firing (pending settling, a draining ONCE
        #: queue): re-derived at every span start, like the scalar path
        #: re-reads power each span.
        self._volatile: set[int] = set()
        self._offline: set[int] = set()
        self._halt: set[int] = set()
        #: Unbanked busy lanes with latency_jitter_sigma > 0: one RNG draw
        #: per span through the core's stream-aligned buffer.
        self._jitter: set[int] = set()
        self._lane_banked = np.zeros(n, dtype=bool)
        #: Per banked resident machine: (machine, lane_lo, lane_hi,
        #: account_lo, account_hi) — lanes and ledger accounts are
        #: contiguous per machine by construction.
        self._banked: list[tuple[SMPMachine, int, int, int, int]] = []

        # Energy lanes: one per ledger account across resident machines,
        # materialised exactly the way the scalar first chunk would.
        e_accs: list[EnergyAccumulator] = []
        e_pow: list[float] = []
        e_last: list[float] = []
        e_energy: list[float] = []
        self.elane = [-1] * n
        lane = 0
        for m in self.resident:
            lane_lo = lane
            e_lo = len(e_accs)
            meter = m.meter
            powers = {f"core{c.core_id}": meter.core_power_w(c, self.now)
                      for c in m.cores}
            powers["non_cpu"] = meter.non_cpu_power_w
            ledger = m.ledger
            for name in powers:
                ledger.account(name)
            by_name = {}
            for name, acc in ledger.accounts.items():
                by_name[name] = len(e_accs)
                e_accs.append(acc)
                e_pow.append(powers.get(name, 0.0))
                e_last.append(acc.last_time_s)
                e_energy.append(acc.energy_j)
            for c in m.cores:
                self.elane[lane] = by_name[f"core{c.core_id}"]
                lane += 1
            if m.supply_bank is not None:
                self._banked.append((m, lane_lo, lane, e_lo, len(e_accs)))
                self._lane_banked[lane_lo:lane] = True
        self.e_accs = e_accs
        self.e_pow = np.array(e_pow) if e_accs else np.zeros(0)
        self.e_last = np.array(e_last) if e_accs else np.zeros(0)
        self.e_energy = np.array(e_energy) if e_accs else np.zeros(0)
        if self._banked:
            self._ub_idx = np.nonzero(~self._lane_banked)[0]
            emask = np.ones(len(e_accs), dtype=bool)
            for _, _, _, e_lo, e_hi in self._banked:
                emask[e_lo:e_hi] = False
            self._ub_eidx = np.nonzero(emask)[0]
        else:
            self._ub_idx = None
            self._ub_eidx = None

        for i in range(n):
            self._setup_lane(i, self.now)
        for m in self.resident:
            m._fleet_ref = self

    # -- eligibility ---------------------------------------------------------------

    def _residency_blocker(self, m, now_ref) -> str | None:
        """None when ``m`` can live in columns, else why not.  "transient"
        blockers (a banked machine with pending settling or ONCE work that
        will drain, a Job subclass in a queue) are rechecked each span;
        anything structural stays delegated until the fleet is rebuilt."""
        if type(m) is not SMPMachine:
            return "type"
        bank = m.supply_bank
        banked = bank is not None
        if banked:
            if type(bank) is not SupplyBank or id(bank) in self._shared_banks:
                return "bank"
        if type(m.ledger) is not EnergyLedger or type(m.meter) is not PowerMeter:
            return "component"
        if any(type(a) is not EnergyAccumulator
               for a in m.ledger.accounts.values()):
            return "component"
        if now_ref is not None and m._now_s != now_ref:
            return "desync"
        transient = False
        for c in m.cores:
            cls = _classify_lane(c, m._now_s, banked)
            if cls is None:
                if not _hooks_intact(c):
                    return "hooks"
                act = c.actuator
                if type(act) is not ThrottleActuator:
                    return "actuator"
                if not _detector_passive(c.idle_detector):
                    return "detector"
                if type(c.dispatcher) is not Dispatcher:
                    return "dispatcher"
                # Remaining causes: a banked machine mid-settle/mid-ONCE,
                # or a Job subclass — both drain or rebuild away.
                transient = True
                continue
            if m.meter.core_power_w(c, m._now_s) < 0.0:
                return "power"
        return "transient" if transient else None

    # -- lane lifecycle --------------------------------------------------------------

    def invalidate_core(self, core: SimulatedCore) -> None:
        """Mark one core's lane stale (re-derived at the next span)."""
        self._dirty.add(core)

    def _install_bank_hook(self, i: int) -> None:
        bank = self.cores[i].counters
        hook = self._bank_hooks[i]
        if hook is None:
            def hook(fleet=self, lane=i):
                if fleet._valid:
                    fleet._flush_counters(lane)
            self._bank_hooks[i] = hook
        bank._fleet_flush = hook

    def _remove_bank_hook(self, i: int) -> None:
        hook = self._bank_hooks[i]
        if hook is None:
            return
        d = getattr(self.cores[i].counters, "__dict__", None)
        if d is not None and d.get("_fleet_flush") is hook:
            del d["_fleet_flush"]

    def _setup_lane(self, i: int, t0: float) -> None:
        core = self.cores[i]
        old = core._fleet
        if old is not None and old is not self and old._valid:
            old.detach()
        cls = _classify_lane(core, t0, bool(self._lane_banked[i]))
        if cls is None:
            raise _Evict
        mode, volatile = cls
        self._volatile.discard(i)
        if volatile:
            self._volatile.add(i)
        self._chunked.discard(i)
        self._offline.discard(i)
        self._jitter.discard(i)
        if i in self._halt:
            self._halt.discard(i)
            self.hfreq[i] = 0.0
        self.kind[i] = mode
        self.busy[i] = False
        self.jobs[i] = None
        self.pdata[i] = None
        pend = self.pending[i]
        if pend:
            pend.clear()
        self.freq[i] = 0.0
        self.thr[i] = 0.0
        self.r2[i] = self.r3[i] = self.rm[i] = self.rl1[i] = 0.0
        self.pinstr[i] = np.inf
        self.ptol[i] = np.inf
        self.prog[i] = 0.0
        self.retired[i] = 0.0
        self.cur_res[i] = 0.0
        self.ft[i] = 0.0

        if mode == _CHUNKED:
            # Object-authoritative lane: core.advance runs each span and
            # keeps its own counters/residency; its columns stay unused.
            self._chunked.add(i)
            self.cur_name[i] = None
            self._remove_bank_hook(i)
        elif mode == _OFFLINE:
            self._offline.add(i)
            self.cur_name[i] = "__offline__"
            self.ft_key[i] = 0.0
            self.cur_res[i] = core.phase_time_s.get("__offline__", 0.0)
            self.ft[i] = core.freq_time_s.get(0.0, 0.0)
            self._load_counters(i)
            self._install_bank_hook(i)
        else:
            freq = core.actuator.effective_hz(t0)
            if mode == _IDLE:
                core.idle_detector.note_queue_length(0)
                if core.config.idle_style is IdleStyle.HOT_LOOP:
                    phase = HOT_IDLE_PHASE
                    self.thr[i] = phase.throughput(core.latencies, freq)
                    self.freq[i] = freq
                    self.r2[i] = phase.n_l2_per_instr
                    self.r3[i] = phase.n_l3_per_instr
                    self.rm[i] = phase.n_mem_per_instr
                    self.rl1[i] = phase.l1_stall_cycles_per_instr
                    self.cur_name[i] = phase.name
                else:
                    if self.hfreq is None:
                        self.hfreq = np.zeros(self.n)
                    self._halt.add(i)
                    self.hfreq[i] = freq
                    self.cur_name[i] = "__halted__"
            else:  # _BUSY
                job = core.dispatcher._queue[0]
                core.idle_detector.note_queue_length(1)
                job.mark_started(t0)
                lat = core.latencies
                pdata = []
                for p in job.phases:
                    core_cpi = (1.0 / p.alpha
                                + p.l1_stall_cycles_per_instr
                                + p.unmodeled_stall_cycles_per_instr)
                    mem_time = (p.n_l2_per_instr * lat.t_l2_s
                                + p.n_l3_per_instr * lat.t_l3_s
                                + p.n_mem_per_instr * lat.t_mem_s)
                    pdata.append((p.name, p.instructions, core_cpi, mem_time,
                                  p.n_l2_per_instr, p.n_l3_per_instr,
                                  p.n_mem_per_instr,
                                  p.l1_stall_cycles_per_instr))
                pidx = job.phase_index
                name, pinstr, ccpi, mem, r2, r3, rm, rl1 = pdata[pidx]
                thr = freq / (ccpi + mem * freq)
                if thr <= 0.0:
                    raise _Evict  # the scalar path raises; let it
                self.busy[i] = True
                self.jobs[i] = job
                self.pdata[i] = pdata
                self.pidx[i] = pidx
                self.freq[i] = freq
                self.thr[i] = thr
                self.r2[i] = r2
                self.r3[i] = r3
                self.rm[i] = rm
                self.rl1[i] = rl1
                self.pinstr[i] = pinstr
                self.ptol[i] = pinstr * (1.0 - 1e-12)
                self.prog[i] = job.phase_progress
                self.retired[i] = job.instructions_retired
                self.cur_name[i] = name
                if self.pending[i] is None:
                    self.pending[i] = {}
                if (core.config.latency_jitter_sigma > 0.0
                        and not self._lane_banked[i]):
                    self._jitter.add(i)
            self.ft_key[i] = freq
            self.cur_res[i] = core.phase_time_s.get(self.cur_name[i], 0.0)
            self.ft[i] = core.freq_time_s.get(freq, 0.0)
            self._load_counters(i)
            self._install_bank_hook(i)

        k = self.elane[i]
        if k >= 0:
            pw = self.meters[i].core_power_w(core, t0)
            if pw < 0.0:
                raise _Evict  # the scalar ledger raises; let it
            self.e_pow[k] = pw
        core._fleet = self
        core.idle_detector._fleet_invalidate = core._fleet_invalidate

    def _load_counters(self, i: int) -> None:
        b = self.cores[i].counters
        cnt = self.cnt
        cnt[0, i] = b.instructions
        cnt[1, i] = b.cycles
        cnt[2, i] = b.n_l2
        cnt[3, i] = b.n_l3
        cnt[4, i] = b.n_mem
        cnt[5, i] = b.l1_stall_cycles
        cnt[6, i] = b.halted_cycles

    def _flush_counters(self, i: int) -> None:
        b = self.cores[i].counters
        cnt = self.cnt
        b.instructions = float(cnt[0, i])
        b.cycles = float(cnt[1, i])
        b.n_l2 = float(cnt[2, i])
        b.n_l3 = float(cnt[3, i])
        b.n_mem = float(cnt[4, i])
        b.l1_stall_cycles = float(cnt[5, i])
        b.halted_cycles = float(cnt[6, i])

    def _flush_lane(self, i: int) -> None:
        if self.kind[i] == _CHUNKED:
            return
        self._flush_counters(i)
        core = self.cores[i]
        pt = core.phase_time_s
        pend = self.pending[i]
        if pend:
            pt.update(pend)
            pend.clear()
        name = self.cur_name[i]
        cur = float(self.cur_res[i])
        key = self.ft_key[i]
        ftd = core.freq_time_s
        ftv = float(self.ft[i])
        if self.kind[i] == _BUSY:
            # The scalar loop's commit always writes the current phase and
            # frequency keys, even at 0.0 right after a crossing.
            pt[name] = cur
            ftd[key] = ftv
            job = self.jobs[i]
            job.phase_progress = float(self.prog[i])
            job.instructions_retired = float(self.retired[i])
        else:
            # Idle/offline lanes only create their residency keys once a
            # real span ran, exactly like the scalar path.
            if name in pt or cur != 0.0:
                pt[name] = cur
            if key in ftd or ftv != 0.0:
                ftd[key] = ftv

    def flush(self) -> None:
        """Write every lane back to its objects (idempotent; the columns
        stay authoritative until :meth:`detach`)."""
        for i in range(self.n):
            self._flush_lane(i)
        e = self.e_energy
        last = self.e_last
        for k, acc in enumerate(self.e_accs):
            acc.energy_j = float(e[k])
            acc.last_time_s = float(last[k])

    def detach(self) -> None:
        """Flush and dissolve: objects become authoritative again."""
        if not self._valid:
            return
        self.flush()
        self._valid = False
        for i, core in enumerate(self.cores):
            self._remove_bank_hook(i)
            if core._fleet is self:
                core._fleet = None
                core.idle_detector._fleet_invalidate = None
        for m in self.resident:
            if getattr(m, "_fleet_ref", None) is self:
                m._fleet_ref = None

    # -- per-span processing -----------------------------------------------------------

    def prepare(self) -> bool:
        """Re-derive dirty lanes; False means rebuild the whole fleet."""
        if self._volatile:
            cores = self.cores
            self._dirty.update(cores[i] for i in self._volatile)
        if self._dirty:
            t0 = self.now
            dirty = self._dirty
            self._dirty = set()
            for core in dirty:
                i = self._lane_of.get(core)
                if i is None:
                    continue
                self._flush_lane(i)
                try:
                    self._setup_lane(i, t0)
                except _Evict:
                    return False
        if self._recheck:
            for m in self._recheck:
                if self._residency_blocker(m, self.now) is None:
                    return False
        return True

    def advance(self, dt: float) -> bool:
        """One event-free span over all resident lanes.  Returns False
        (caller takes the scalar path) on the float corners where the
        scalar loop's span arithmetic would not collapse to one slice, or
        when a raising supply-bank cascade would cut a banked machine's
        span short (``_span_blocker`` says which)."""
        t0 = self.now
        e2 = t0 + dt
        eff = e2 - t0
        n = self.n
        plans = None
        if n:
            se = t0 + eff
            limit = se - t0
            if limit != eff or se - (t0 + limit) > _MIN_SLICE_S:
                self._span_blocker = "corner"
                return False
            if self._banked:
                plans = self._plan_banked(t0, e2, dt)
                if plans is None:
                    return False  # _span_blocker set by _plan_banked
            banked = self._lane_banked
            for i in self._chunked:
                if not banked[i]:
                    self.cores[i].advance(t0, eff)
            if eff > _MIN_SLICE_S:
                if self._jitter:
                    self._draw_jitter()
                ub = self._ub_idx
                if ub is None:
                    self._advance_span_all(t0, eff)
                elif ub.size:
                    self._advance_span_sub(t0, eff, ub)
            elif self._offline:
                idx = [i for i in self._offline if not banked[i]]
                if idx:
                    self.cur_res[idx] += eff
                    self.ft[idx] += eff
        if plans:
            self._advance_banked(plans)
        if self.e_accs:
            eidx = self._ub_eidx
            if eidx is None:
                self.e_energy += self.e_pow * (e2 - self.e_last)
                self.e_last.fill(e2)
            elif eidx.size:
                self.e_energy[eidx] += self.e_pow[eidx] * \
                    (e2 - self.e_last[eidx])
                self.e_last[eidx] = e2
        self.now = e2
        for m in self.resident:
            m._now_s = e2
        return True

    def _advance_span_all(self, t0: float, eff: float) -> None:
        """The whole-fleet vector pass (no banked lanes)."""
        thr = self.thr
        prog = self.prog
        with np.errstate(divide="ignore", invalid="ignore"):
            ttpe = (self.pinstr - prog) / thr
        instr = thr * eff
        prog2 = prog + instr
        bad = ttpe <= eff
        bad |= prog2 >= self.ptol
        bad |= (instr <= 0.0) & self.busy
        nbad = np.count_nonzero(bad)
        if nbad:
            keep = ~bad
            instr = np.where(keep, instr, 0.0)
            add = np.where(keep, eff, 0.0)
            self.prog = np.where(keep, prog2, prog)
        else:
            add = eff
            self.prog = prog2
        cnt = self.cnt
        cnt[0] += instr
        cnt[1] += self.freq * add
        cnt[2] += self.r2 * instr
        cnt[3] += self.r3 * instr
        cnt[4] += self.rm * instr
        cnt[5] += self.rl1 * instr
        if self._halt:
            cnt[6] += self.hfreq * add
        self.cur_res += add
        self.ft += add
        self.retired += instr
        if nbad:
            jitter = self._jitter
            for i in np.nonzero(bad)[0]:
                i = int(i)
                first = float(self.thr[i]) if i in jitter else None
                self._advance_busy_lane(i, ((t0, eff),), first_thr=first)

    def _advance_span_sub(self, t0: float, eff: float,
                          ub: np.ndarray) -> None:
        """The vector pass gathered over unbanked lanes only — the same
        elementwise IEEE ops as :meth:`_advance_span_all` on the gathered
        values, so per-lane results are bit-identical."""
        thr = self.thr[ub]
        prog = self.prog[ub]
        with np.errstate(divide="ignore", invalid="ignore"):
            ttpe = (self.pinstr[ub] - prog) / thr
        instr = thr * eff
        prog2 = prog + instr
        bad = ttpe <= eff
        bad |= prog2 >= self.ptol[ub]
        bad |= (instr <= 0.0) & self.busy[ub]
        nbad = np.count_nonzero(bad)
        if nbad:
            keep = ~bad
            instr = np.where(keep, instr, 0.0)
            add = np.where(keep, eff, 0.0)
            self.prog[ub] = np.where(keep, prog2, prog)
        else:
            add = eff
            self.prog[ub] = prog2
        cnt = self.cnt
        cnt[0, ub] += instr
        cnt[1, ub] += self.freq[ub] * add
        cnt[2, ub] += self.r2[ub] * instr
        cnt[3, ub] += self.r3[ub] * instr
        cnt[4, ub] += self.rm[ub] * instr
        cnt[5, ub] += self.rl1[ub] * instr
        if self._halt:
            cnt[6, ub] += self.hfreq[ub] * add
        self.cur_res[ub] += add
        self.ft[ub] += add
        self.retired[ub] += instr
        if nbad:
            jitter = self._jitter
            for p in np.nonzero(bad)[0]:
                i = int(ub[p])
                first = float(self.thr[i]) if i in jitter else None
                self._advance_busy_lane(i, ((t0, eff),), first_thr=first)

    def _draw_jitter(self) -> None:
        """Draw this span's jitter value for every unbanked jittered busy
        lane and fold it into that lane's throughput column.

        Mirrors the kernel's buffer discipline exactly: refill 64 at span
        start iff the buffer is absent or sigma changed, refill 256 on
        exhaustion, one draw per slice — and the vector pass is one slice.
        Per-core RNG streams are independent, so lane order is irrelevant.
        """
        pdata = self.pdata
        pidx = self.pidx
        freq_col = self.freq
        thr_col = self.thr
        for i in self._jitter:
            core = self.cores[i]
            sigma = core.config.latency_jitter_sigma
            _, _, ccpi, mem = pdata[i][pidx[i]][:4]
            freq = freq_col[i]
            if sigma > 0.0:
                buf = core._jitter_buf
                if buf is None or buf[0] != sigma:
                    core._refill_jitter(64)
                    buf = core._jitter_buf
                jits = buf[2]
                pos = core._jitter_pos
                if pos >= len(jits):
                    core._refill_jitter(256)
                    jits = core._jitter_buf[2]
                    pos = core._jitter_pos
                jit = jits[pos]
                core._jitter_pos = pos + 1
                cpi = ccpi + mem * jit * freq
            else:
                cpi = ccpi + mem * freq
            thr_col[i] = freq / cpi

    # -- banked machines: the chunked columnar walk ----------------------------------

    def _plan_banked(self, t0: float, e2: float, dt: float):
        """Pure pre-pass over banked resident machines: observation
        boundaries, span demand, and the bank's planned actions.

        Returns None (whole-fleet span fallback, columns untouched) when a
        raising cascade would cut a span short or a chunk would leave a
        float residue — both cases where only the scalar path reproduces
        the partial advance / exception order.
        """
        plans = []
        kind = self.kind
        for m, lo, hi, e_lo, e_hi in self._banked:
            step = m.config.supply_observation_interval_s
            bounds = observation_bounds(t0, e2, dt, step)
            demand = m.system_power_w()
            n_exec, actions = m.supply_bank.plan_constant_span(bounds, demand)
            if n_exec < len(bounds):
                self._span_blocker = "bank"
                return None
            barr = np.asarray(bounds)
            starts = np.empty(barr.size)
            starts[0] = t0
            starts[1:] = barr[:-1]
            dts = barr - starts
            if any(kind[i] == _IDLE for i in range(lo, hi)):
                ends = starts + dts
                chunks = ends - starts
                if np.any(ends - (starts + chunks) > _MIN_SLICE_S):
                    self._span_blocker = "corner"
                    return None
            plans.append((m, lo, hi, e_lo, e_hi, bounds, barr, starts, dts,
                          demand, actions))
        return plans

    def _advance_banked(self, plans) -> None:
        """Advance each banked machine through its observation chunks —
        the kernel's ``advance_machine_span`` against columns: cores in
        order, then the ledger's 2-D cumsum, then the planned observes."""
        kind = self.kind
        cores = self.cores
        for m, lo, hi, e_lo, e_hi, bounds, barr, starts, dts, demand, \
                actions in plans:
            t0 = float(starts[0])
            for i in range(lo, hi):
                k = kind[i]
                if k == _BUSY:
                    self._advance_busy_lane(
                        i, list(zip(starts.tolist(), dts.tolist())))
                elif k == _IDLE:
                    self._advance_idle_lane(i, dts)
                elif k == _OFFLINE:
                    self.cur_res[i] = _acc(float(self.cur_res[i]), dts)
                    self.ft[i] = _acc(float(self.ft[i]), dts)
                else:  # _CHUNKED: object-authoritative, per chunk
                    core = cores[i]
                    prev = t0
                    for t_end in bounds:
                        core.advance(prev, t_end - prev)
                        prev = t_end
            # EnergyLedger.advance_many's 2-D cumsum over this machine's
            # contiguous account slice (bit-equal: same buffer layout).
            pw = self.e_pow[e_lo:e_hi]
            buf = np.empty((e_hi - e_lo, barr.size + 1))
            buf[:, 0] = self.e_energy[e_lo:e_hi]
            buf[:, 1] = pw * (barr[0] - self.e_last[e_lo:e_hi])
            if barr.size > 1:
                buf[:, 2:] = pw[:, None] * (barr[1:] - barr[:-1])[None, :]
            self.e_energy[e_lo:e_hi] = buf.cumsum(axis=1)[:, -1]
            self.e_last[e_lo:e_hi] = barr[-1]
            for j in actions:
                # The real observe: overload episodes, cascades, PSU
                # events — identical to the per-machine kernel's replay.
                m.supply_bank.observe(bounds[j], demand)

    def _advance_idle_lane(self, i: int, dts: np.ndarray) -> None:
        """The kernel's ``_advance_idle_span`` against this lane's columns
        (the caller pre-checked the float-residue corner)."""
        use = dts[dts > _MIN_SLICE_S]
        if use.size == 0:
            return
        cnt = self.cnt
        if i in self._halt:
            cnt[6, i] = _acc(float(cnt[6, i]), float(self.hfreq[i]) * use)
        else:
            thr = float(self.thr[i])
            instr = thr * use
            cnt[0, i] = _acc(float(cnt[0, i]), instr)
            cnt[1, i] = _acc(float(cnt[1, i]), float(self.freq[i]) * use)
            for rate, row in ((float(self.r2[i]), 2), (float(self.r3[i]), 3),
                              (float(self.rm[i]), 4),
                              (float(self.rl1[i]), 5)):
                # Zero-rate adds are bitwise no-ops (x + 0.0 == x, x >= 0).
                if rate != 0.0:
                    cnt[row, i] = _acc(float(cnt[row, i]), rate * instr)
        self.cur_res[i] = _acc(float(self.cur_res[i]), use)
        self.ft[i] = _acc(float(self.ft[i]), use)

    def _advance_busy_lane(self, i: int, chunks, *,
                           first_thr: float | None = None) -> None:
        """Literal port of the kernel's inlined slice loop against this
        lane's columns, jitter draws and phase-transition events included.

        ``first_thr`` carries the throughput the span pre-pass already
        drew for this lane (one draw per span); the first slice consumes
        it and every later slice draws fresh, so the RNG stream matches
        the scalar loop exactly.
        """
        core = self.cores[i]
        job = self.jobs[i]
        once = job.loop is not LoopMode.LOOP
        pdata = self.pdata[i]
        nph = len(pdata)
        pidx = self.pidx[i]
        freq = float(self.freq[i])
        cnt = self.cnt
        prog = float(self.prog[i])
        retired = float(self.retired[i])
        iters = job.iterations
        ci = float(cnt[0, i])
        cc = float(cnt[1, i])
        c2 = float(cnt[2, i])
        c3 = float(cnt[3, i])
        cm = float(cnt[4, i])
        cl1 = float(cnt[5, i])
        pt = core.phase_time_s
        res = self.pending[i]
        name, pinstr, ccpi, mem, r2, r3, rm, rl1 = pdata[pidx]
        cur_res = float(self.cur_res[i])
        ft = float(self.ft[i])
        min_slice = _MIN_SLICE_S

        sigma = core.config.latency_jitter_sigma
        jits: list[float] = []
        pos = buflen = 0
        if sigma > 0.0:
            if first_thr is None and (core._jitter_buf is None
                                      or core._jitter_buf[0] != sigma):
                core._refill_jitter(64)
            jits = core._jitter_buf[2]
            pos = core._jitter_pos
            buflen = len(jits)

        tel = get_telemetry()
        emit = tel.enabled
        jname = job.name
        throughput = first_thr
        try:
            for start, dt in chunks:
                t = start
                end = start + dt
                while end - t > min_slice:
                    rem = pinstr - prog
                    if throughput is None:
                        if sigma > 0.0:
                            if pos >= buflen:
                                core._jitter_pos = pos
                                core._refill_jitter(256)
                                jits = core._jitter_buf[2]
                                pos = core._jitter_pos
                                buflen = len(jits)
                            jit = jits[pos]
                            pos += 1
                            cpi = ccpi + mem * jit * freq
                        else:
                            cpi = ccpi + mem * freq
                        throughput = freq / cpi
                    if throughput <= 0.0:
                        raise SimulationError(
                            f"non-positive throughput on core {core.core_id}")
                    ttpe = rem / throughput
                    limit = end - t
                    chunk = limit if limit < ttpe else ttpe
                    if chunk < min_slice:
                        chunk = min_slice
                    if chunk >= ttpe:
                        chunk = ttpe
                        instr = rem
                    else:
                        instr = throughput * chunk
                    if instr <= 0.0:
                        # Degenerate float corner: force the boundary across.
                        instr = rem
                        chunk = ttpe
                    ci += instr
                    cc += freq * chunk
                    c2 += r2 * instr
                    c3 += r3 * instr
                    cm += rm * instr
                    cl1 += rl1 * instr
                    cur_res += chunk
                    ft += chunk
                    prog += instr
                    retired += instr
                    if prog >= pinstr * (1.0 - 1e-12):
                        prog = 0.0
                        if once and pidx + 1 >= nph:
                            # Completion crossing: Job._advance_phase and
                            # Dispatcher.account_run's done path, in the
                            # scalar slice's exact order.  Only unbanked
                            # single-job lanes classify busy with a ONCE
                            # job, so `chunks` is the whole span.
                            res[name] = cur_res
                            t = t + chunk
                            job.state = JobState.COMPLETED
                            job.completed_at_s = t
                            if emit:
                                tel.emit(EVENT_PHASE_TRANSITION,
                                         sim_time_s=t, job=jname,
                                         from_phase=name, to_phase=None)
                            disp = core.dispatcher
                            disp._queue.popleft()
                            disp.finished.append(job)
                            disp._quantum_left_s = disp.quantum_s
                            core.idle_detector.note_queue_length(0)
                            # Drained: the rest of the span is the
                            # scalar's idle loop — no jitter draws, the
                            # same frequency key, one residue-safe slice
                            # per `_advance_idle` call.
                            hot = (core.config.idle_style
                                   is IdleStyle.HOT_LOOP)
                            name = "__idle__" if hot else "__halted__"
                            nxt = res.get(name)
                            if nxt is None:
                                nxt = pt.get(name, 0.0)
                            cur_res = nxt
                            if hot:
                                ithr = HOT_IDLE_PHASE.throughput(
                                    core.latencies, freq)
                                while end - t > min_slice:
                                    chunk = end - t
                                    ci += ithr * chunk
                                    cc += freq * chunk
                                    cur_res += chunk
                                    ft += chunk
                                    t = t + chunk
                            else:
                                halted = float(cnt[6, i])
                                while end - t > min_slice:
                                    chunk = end - t
                                    halted += freq * chunk
                                    cur_res += chunk
                                    ft += chunk
                                    t = t + chunk
                                cnt[6, i] = halted
                            # Power may have flipped (is_idle): re-derive
                            # the lane at the next span start, exactly
                            # when the scalar re-reads core_power_w.
                            self._dirty.add(core)
                            return
                        if pidx + 1 < nph:
                            pidx += 1
                        else:
                            pidx = 0
                            iters += 1
                        res[name] = cur_res
                        prev_name = name
                        name, pinstr, ccpi, mem, r2, r3, rm, rl1 = pdata[pidx]
                        nxt = res.get(name)
                        if nxt is None:
                            nxt = pt.get(name, 0.0)
                        cur_res = nxt
                        if emit:
                            # Same payload/order as Job.retire's
                            # _advance_phase (a looping job is never done).
                            tel.emit(EVENT_PHASE_TRANSITION,
                                     sim_time_s=t + chunk, job=jname,
                                     from_phase=prev_name, to_phase=name)
                    throughput = None
                    t = t + chunk
        finally:
            if sigma > 0.0:
                core._jitter_pos = pos
            cnt[0, i] = ci
            cnt[1, i] = cc
            cnt[2, i] = c2
            cnt[3, i] = c3
            cnt[4, i] = cm
            cnt[5, i] = cl1
            self.prog[i] = prog
            self.retired[i] = retired
            self.cur_res[i] = cur_res
            self.ft[i] = ft
            self.pidx[i] = pidx
            self.cur_name[i] = name
            self.pinstr[i] = pinstr
            self.ptol[i] = pinstr * (1.0 - 1e-12)
            self.thr[i] = freq / (ccpi + mem * freq)
            self.r2[i] = r2
            self.r3[i] = r3
            self.rm[i] = rm
            self.rl1[i] = rl1
            job.phase_index = pidx
            job.iterations = iters


# -- module-level dispatch ---------------------------------------------------------


def _get_fleet(machines: list) -> FleetState:
    anchor = machines[0]
    cached = anchor.__dict__.get("_fleet_cache")
    if cached is not None:
        flist, fleet = cached
        if fleet._valid and (flist is machines or flist == machines):
            return fleet
    fleet = FleetState(machines)
    anchor.__dict__["_fleet_cache"] = (machines, fleet)
    return fleet


def advance_fleet(machines, dt: float, *, flush: bool = True) -> None:
    """Advance every machine across one event-free span of ``dt`` seconds,
    resident lanes through fleet columns and the rest through the
    per-machine reference path.

    ``flush=False`` leaves resident state in the columns (the driver's hot
    loop does this and flushes once when ``run_until`` returns); counters
    still synchronise on snapshot through the installed bank hook.
    """
    check_non_negative(dt, "dt")
    if not isinstance(machines, list):
        machines = list(machines)
    if dt == 0.0 or not machines:
        return
    fleet = None
    for _ in range(2):
        cand = _get_fleet(machines)
        if cand.prepare():
            fleet = cand
            break
        cand.detach()
    advanced = False
    if fleet is not None:
        try:
            advanced = fleet.advance(dt)
        except BaseException:
            fleet.flush()
            raise
    if not advanced:
        reason = "rebuild" if fleet is None else fleet._span_blocker
        if fleet is not None:
            fleet.detach()
        _bump(0, {reason: len(machines)})
        for m in machines:
            m.advance(dt)
        return
    _bump(len(fleet.resident), fleet.delegate_reasons or None)
    try:
        for m in fleet.delegates:
            m.advance(dt)
    except BaseException:
        fleet.flush()
        raise
    if flush:
        fleet.flush()


def flush_machines(machines) -> None:
    """Synchronise machine objects with any live fleet columns."""
    if not isinstance(machines, list):
        machines = list(machines)
    if not machines:
        return
    cached = machines[0].__dict__.get("_fleet_cache")
    if cached is not None and cached[1]._valid and \
            (cached[0] is machines or cached[0] == machines):
        cached[1].flush()


def reset_fleet(machines) -> None:
    """Dissolve any fleet over ``machines`` (flushes first).  Call before
    structural mutations the invalidation hooks cannot see — attaching a
    supply bank mid-run (the rebuilt fleet then runs it as a resident
    banked machine), swapping a meter/ledger/dispatcher instance."""
    if not isinstance(machines, list):
        machines = list(machines)
    if not machines:
        return
    cached = machines[0].__dict__.get("_fleet_cache")
    if cached is not None:
        if cached[1]._valid:
            cached[1].detach()
        del machines[0].__dict__["_fleet_cache"]
