"""The SMP machine: cores + power meter + energy ledger + supplies.

Models the experimental p630 (Section 7.1): four cores sharing a frequency/
power table, a system power meter, fixed non-CPU power, and an optional
redundant supply bank for the Section 2 failure scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import constants
from ..errors import SimulationError
from ..model.latency import MemoryLatencyProfile, POWER4_LATENCIES
from ..power.energy import EnergyLedger
from ..power.supply import SupplyBank
from ..power.table import POWER4_TABLE, FrequencyPowerTable
from ..units import check_non_negative
from ..workloads.job import Job
from .core import CoreConfig, SimulatedCore
from .kernel import advance_machine_span
from .powermeter import PowerMeter
from .rng import spawn_rngs

__all__ = ["MachineConfig", "SMPMachine", "observation_bounds"]


def observation_bounds(start: float, end: float, dt: float,
                       step: float) -> list[float]:
    """Ascending supply-observation boundaries for one span of ``dt``
    seconds from ``start`` to ``end``, every ``step`` seconds, always
    ending exactly at ``end``.

    Boundaries are computed by index (``start + i*step``) so the span end
    lands exactly instead of accumulating ``dt -= step`` subtraction
    error; ``start + i*step`` vectorised elementwise matches the scalar
    expression bit-for-bit.  The fleet kernel replays banked machines
    through the same boundaries, so this is the single source of truth.
    """
    n = int(dt / step)
    while n and start + n * step >= end:
        n -= 1
    bounds = (start + np.arange(1.0, n + 1.0) * step).tolist()
    bounds.append(end)
    return bounds


@dataclass(frozen=True)
class MachineConfig:
    """Configuration of a simulated SMP machine."""

    num_cores: int = constants.NUM_CORES_P630
    table: FrequencyPowerTable = field(default_factory=lambda: POWER4_TABLE)
    latencies: MemoryLatencyProfile = field(default_factory=lambda: POWER4_LATENCIES)
    core_config: CoreConfig = field(default_factory=CoreConfig)
    non_cpu_power_w: float = constants.NON_CPU_POWER_W
    #: Measurement noise of the power meter (true draw stays exact).
    meter_noise_sigma: float = 0.0
    #: Initial operating point (defaults to the table's maximum).
    initial_freq_hz: float | None = None
    #: Maximum stretch between supply-bank demand observations.  Long
    #: event-free advances are chunked at this granularity so overload
    #: episodes and cascade deadlines are detected even when nothing else
    #: is scheduled.  Ignored without a supply bank.
    supply_observation_interval_s: float = 0.010
    name: str = "p630"

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise SimulationError("a machine needs at least one core")
        check_non_negative(self.non_cpu_power_w, "non_cpu_power_w")
        if self.initial_freq_hz is not None and self.initial_freq_hz not in self.table:
            raise SimulationError(
                "initial frequency must be an operating point of the table"
            )


class SMPMachine:
    """Cores, meter, energy ledger and (optionally) a supply bank."""

    def __init__(self, config: MachineConfig | None = None, *,
                 supply_bank: SupplyBank | None = None,
                 seed: int | None = None) -> None:
        self.config = config or MachineConfig()
        cfg = self.config
        f0 = cfg.initial_freq_hz if cfg.initial_freq_hz is not None else cfg.table.f_max_hz
        rngs = spawn_rngs(seed, cfg.num_cores + 1)
        self.cores: list[SimulatedCore] = [
            SimulatedCore(i, initial_freq_hz=f0, latencies=cfg.latencies,
                          config=cfg.core_config, rng=rngs[i])
            for i in range(cfg.num_cores)
        ]
        self.meter = PowerMeter(
            cfg.table,
            non_cpu_power_w=cfg.non_cpu_power_w,
            noise_sigma=cfg.meter_noise_sigma,
            rng=rngs[-1],
        )
        self.ledger = EnergyLedger()
        self.supply_bank = supply_bank
        self._now_s = 0.0
        self._freq_vec: tuple[int, tuple[float, ...]] | None = None

    # -- introspection -------------------------------------------------------------

    @property
    def now_s(self) -> float:
        """Machine-local time (kept in lockstep with the driver's clock)."""
        return self._now_s

    @property
    def table(self) -> FrequencyPowerTable:
        return self.config.table

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def core(self, index: int) -> SimulatedCore:
        """The ``index``-th core (bounds-checked)."""
        if not 0 <= index < len(self.cores):
            raise SimulationError(
                f"core index {index} out of range 0..{len(self.cores) - 1}"
            )
        return self.cores[index]

    def assign(self, core_index: int, job: Job) -> None:
        """Place a job on a core (lifetime affinity)."""
        self.core(core_index).add_job(job)

    def migrate(self, job: Job, src: int, dst: int, *,
                cost_s: float = 0.0) -> None:
        """Move a job between cores — the operation the paper's frequency
        scheduling exists to avoid (Section 1).

        ``cost_s`` models the cold-cache warm-up on the destination: the
        job makes no progress for that long after arrival (charged as
        stolen time on the destination core).  Call only from event
        callbacks, between execution slices.
        """
        check_non_negative(cost_s, "cost_s")
        if src == dst:
            raise SimulationError("migration source equals destination")
        src_core = self.core(src)
        src_core.dispatcher.remove_job(job)
        # The queue changed behind the dispatcher's back as far as the
        # fleet kernel is concerned; re-derive the source lane.
        src_core._fleet_invalidate()
        self.core(dst).add_job(job)
        if cost_s > 0.0:
            self.core(dst).steal_time(cost_s)

    # -- power views -----------------------------------------------------------------

    def cpu_power_w(self) -> float:
        """True aggregate processor draw right now."""
        return self.meter.cpu_power_w(self.cores, self._now_s)

    def system_power_w(self) -> float:
        """True whole-system draw right now."""
        return self.meter.system_power_w(self.cores, self._now_s)

    def measure_power_w(self) -> float:
        """A measured (possibly noisy) system reading."""
        return self.meter.measure_w(self.cores, self._now_s)

    def measure_cpu_power_w(self) -> float:
        """A measured (possibly noisy) aggregate processor reading."""
        return self.meter.measure_cpu_w(self.cores, self._now_s)

    def frequency_vector_hz(self) -> list[float]:
        """Requested operating point of every core.

        Cached between frequency changes: the actuators' ``transitions``
        counters only move when a request actually changes the operating
        point, so their sum versions the vector.
        """
        version = 0
        for c in self.cores:
            version += c.actuator.transitions
        cached = self._freq_vec
        if cached is not None and cached[0] == version:
            return list(cached[1])
        vec = [c.frequency_setting_hz for c in self.cores]
        self._freq_vec = (version, tuple(vec))
        return vec

    # -- time ------------------------------------------------------------------------

    def advance(self, dt: float) -> None:
        """Run all cores for ``dt`` seconds and integrate energy.

        Per-core power is taken at the start of the interval; the driver
        always cuts intervals at frequency-change events, so power is
        constant within one call (up to throttle settling, whose error the
        paper also ignores).

        With a supply bank the span is chunked at the observation interval
        so the bank sees demand often enough to time overload episodes
        against its cascade deadline.  Chunk boundaries are computed by
        index (``start + i*step``) so ``_now_s`` lands exactly on the span
        end instead of accumulating ``dt -= step`` subtraction error, and
        the whole span goes through the batched kernel when every component
        is eligible (see :mod:`repro.sim.kernel`).
        """
        check_non_negative(dt, "dt")
        if dt == 0.0:
            return
        start = self._now_s
        end = start + dt
        if self.supply_bank is None:
            self._advance_to(end)
            return
        step = self.config.supply_observation_interval_s
        bounds = observation_bounds(start, end, dt, step)
        if self._batched_eligible() and advance_machine_span(self, bounds):
            return
        for t_end in bounds:
            self._advance_to(t_end)

    def _batched_eligible(self) -> bool:
        """Subclassing any pointwise hook (or component) forces the scalar
        per-chunk path — the kernel only reproduces the stock behaviour."""
        return (type(self)._advance_to is SMPMachine._advance_to
                and type(self.ledger) is EnergyLedger
                and type(self.supply_bank) is SupplyBank
                and type(self.meter) is PowerMeter)

    def _advance_to(self, t_end: float) -> None:
        """Advance one event-free chunk ending exactly at ``t_end``."""
        start = self._now_s
        dt = t_end - start
        powers = {
            f"core{c.core_id}": self.meter.core_power_w(c, start)
            for c in self.cores
        }
        powers["non_cpu"] = self.meter.non_cpu_power_w
        for core in self.cores:
            core.advance(start, dt)
        self._now_s = t_end
        self.ledger.advance_to(t_end, powers)
        if self.supply_bank is not None:
            self.supply_bank.observe(t_end, self.system_power_w())
