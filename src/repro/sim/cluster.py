"""A cluster of nodes over a shared network.

The Figure 3 algorithm is written over ``Nodes x Procs``; this class is the
substrate it runs on: homogeneous (or mixed) nodes, a latency network, and
aggregate power views.  The per-node agents and the global coordinator live
in :mod:`repro.cluster`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import ClusterError
from ..workloads.job import Job
from .kernel import advance_machines
from .machine import MachineConfig, SMPMachine
from .network import Network, NetworkConfig
from .node import ClusterNode
from .rng import spawn_seeds

__all__ = ["Cluster"]


class Cluster:
    """Nodes + interconnect."""

    def __init__(self, nodes: Sequence[ClusterNode], *,
                 network: Network | None = None) -> None:
        if not nodes:
            raise ClusterError("a cluster needs at least one node")
        self.nodes: list[ClusterNode] = list(nodes)
        self._nodes_by_id: dict[int, ClusterNode] = {}
        for n in self.nodes:
            if n.node_id in self._nodes_by_id:
                raise ClusterError("duplicate node ids")
            self._nodes_by_id[n.node_id] = n
        self.network = network or Network()
        # One stable list for the simulator: the fleet kernel keys its
        # resident state on list contents, and rebuilding the list on every
        # property access costs O(N) per event-free span at cluster scale.
        self._machines: list[SMPMachine] = [n.machine for n in self.nodes]

    @classmethod
    def homogeneous(cls, num_nodes: int, *,
                    machine_config: MachineConfig | None = None,
                    network_config: NetworkConfig | None = None,
                    seed: int | None = None) -> "Cluster":
        """Build ``num_nodes`` identical nodes with independent RNG streams."""
        if num_nodes < 1:
            raise ClusterError("need at least one node")
        seeds = spawn_seeds(seed, num_nodes)
        nodes = [
            ClusterNode(i, SMPMachine(machine_config, seed=seeds[i]))
            for i in range(num_nodes)
        ]
        return cls(nodes, network=Network(network_config or NetworkConfig()))

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def machines(self) -> list[SMPMachine]:
        """All member machines (for simulation drivers).  The same list
        object is returned every time; treat it as read-only."""
        return self._machines

    def node(self, node_id: int) -> ClusterNode:
        """Node lookup by id (O(1))."""
        try:
            return self._nodes_by_id[node_id]
        except KeyError:
            raise ClusterError(f"no node with id {node_id}") from None

    @property
    def total_procs(self) -> int:
        return sum(n.num_procs for n in self.nodes)

    def cpu_power_w(self) -> float:
        """True aggregate processor draw across the cluster — the quantity
        the global power limit constrains."""
        return sum(n.cpu_power_w() for n in self.nodes)

    # -- time --------------------------------------------------------------------

    def advance(self, dt: float) -> None:
        """Step every node through one event-free span of ``dt`` seconds.

        Routes through the batched kernel dispatch, so a cluster-scale
        advance costs one kernel call per machine instead of one Python
        step per machine per 10 ms supply-observation chunk.
        """
        advance_machines(self.machines, dt)

    # -- workload placement ---------------------------------------------------------

    def assign_all(self, assignment: Iterable[Iterable[Job]]) -> None:
        """Place jobs from a per-node list-of-lists (one inner list per
        node, one job per processor, as produced by
        :func:`repro.workloads.tiers.tiered_cluster_assignment`)."""
        assignment = [list(jobs) for jobs in assignment]
        if len(assignment) != len(self.nodes):
            raise ClusterError(
                f"assignment covers {len(assignment)} nodes, cluster has "
                f"{len(self.nodes)}"
            )
        for node, jobs in zip(self.nodes, assignment):
            if len(jobs) > node.num_procs:
                raise ClusterError(
                    f"node {node.node_id}: {len(jobs)} jobs exceed "
                    f"{node.num_procs} processors"
                )
            for proc, job in enumerate(jobs):
                node.assign(proc, job)
