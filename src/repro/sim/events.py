"""A deterministic discrete-event queue.

Events fire in (time, insertion-order) order, so simultaneous events run in
the order they were scheduled — a property the scheduler-vs-trigger tests
rely on.  Cancellation is supported by handle.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """One scheduled callback.  Ordering key: (time, sequence number)."""

    time_s: float
    seq: int
    callback: Callable[[float], None] = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped."""
        self.cancelled = True


class EventQueue:
    """Min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule(self, time_s: float, callback: Callable[[float], None], *,
                 name: str = "") -> Event:
        """Schedule ``callback(fire_time)`` at ``time_s``; returns a handle."""
        if not time_s >= 0.0:
            raise SimulationError(f"cannot schedule at negative time {time_s}")
        event = Event(time_s=time_s, seq=next(self._seq),
                      callback=callback, name=name)
        heapq.heappush(self._heap, event)
        return event

    def next_time(self) -> float | None:
        """Fire time of the earliest live event, or ``None`` when empty."""
        self._drop_cancelled()
        return self._heap[0].time_s if self._heap else None

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def pop_due(self, now_s: float) -> Event | None:
        """Pop the earliest live event with ``time_s <= now_s`` (or None)."""
        self._drop_cancelled()
        if self._heap and self._heap[0].time_s <= now_s:
            return heapq.heappop(self._heap)
        return None

    def run_due(self, now_s: float) -> int:
        """Fire every live event due at or before ``now_s``; returns count.

        Callbacks may schedule further events; newly scheduled events that
        are already due fire in the same call.
        """
        fired = 0
        while True:
            event = self.pop_due(now_s)
            if event is None:
                return fired
            event.callback(event.time_s)
            fired += 1
