"""Simulation time.

A :class:`SimClock` is a monotone float; everything that needs "now" holds a
reference to the clock rather than a copy of the value, so time flows from
one place (the simulation driver).
"""

from __future__ import annotations

from ..errors import SimulationError

__all__ = ["SimClock"]


class SimClock:
    """Monotonically advancing simulation time in seconds."""

    def __init__(self, start_s: float = 0.0) -> None:
        if start_s < 0.0:
            raise SimulationError("simulation cannot start at negative time")
        self._now_s = float(start_s)

    @property
    def now_s(self) -> float:
        """Current simulation time."""
        return self._now_s

    def advance_to(self, time_s: float) -> float:
        """Move time forward to ``time_s``; returns the elapsed delta.

        Zero-length advances are allowed (events at the current instant);
        moving backwards is an error.
        """
        if time_s < self._now_s - 1e-12:
            raise SimulationError(
                f"clock cannot run backwards: {time_s} < {self._now_s}"
            )
        delta = max(0.0, time_s - self._now_s)
        self._now_s = max(self._now_s, float(time_s))
        return delta

    def advance_by(self, delta_s: float) -> float:
        """Move time forward by ``delta_s >= 0``; returns the new time."""
        if delta_s < 0.0:
            raise SimulationError(f"negative time step {delta_s}")
        self._now_s += float(delta_s)
        return self._now_s

    def __repr__(self) -> str:
        return f"SimClock(now={self._now_s:.6f}s)"
