"""Idle behaviour and idle detection (Sections 5, 7.1).

The Power4+ "idles hot": an empty run queue executes a tight CPU-bound loop
with an observed IPC of about 1.3, which the predictor mistakes for
demanding CPU-bound work and schedules at a high frequency.  Section 5
proposes an idle signal from the OS/firmware that pins idle processors at
the minimum frequency instead; Section 7.1 notes the prototype did *not*
implement it.  Both behaviours are available here:

* :class:`IdleStyle` selects how an empty core behaves (hot loop vs halt).
* :class:`IdleDetector` delivers the enter/exit-idle signals to listeners
  (the daemon) when enabled.
"""

from __future__ import annotations

import enum
from typing import Callable

from .. import constants
from ..workloads.phase import Phase, idle_phase

__all__ = ["IdleStyle", "IdleDetector", "HOT_IDLE_PHASE"]


class IdleStyle(enum.Enum):
    """What a core does with an empty run queue."""

    #: Spin in the CPU-bound idle loop (the Power4+ behaviour).
    HOT_LOOP = "hot_loop"
    #: Halt, accumulating halted cycles (processors with a halt state;
    #: Section 5 notes these need no idle indicator because the halted-cycle
    #: counter reveals idleness).
    HALT = "halt"


#: The canonical hot idle loop phase (IPC ~1.3, Section 7.1).
HOT_IDLE_PHASE: Phase = idle_phase(ipc=constants.IDLE_LOOP_IPC)


class IdleDetector:
    """Edge-triggered idle signalling from a core to subscribers.

    The core calls :meth:`note_queue_length` whenever its run-queue length
    changes; subscribers (the daemon) receive ``callback(core_id, is_idle)``
    only on transitions.  A disabled detector (``enabled=False``, the
    prototype's configuration) swallows all signals.
    """

    def __init__(self, core_id: int, *, enabled: bool = False) -> None:
        self.core_id = core_id
        self.enabled = enabled
        self._is_idle: bool | None = None
        self._listeners: list[Callable[[int, bool], None]] = []
        #: Set by the fleet kernel while the owning core is resident: a
        #: subscription flips :attr:`passive`, which the fleet's
        #: classification depends on, so it must hear about it.
        self._fleet_invalidate: Callable[[], None] | None = None

    def subscribe(self, callback: Callable[[int, bool], None]) -> None:
        """Register for idle-transition signals."""
        self._listeners.append(callback)
        if self._fleet_invalidate is not None:
            self._fleet_invalidate()

    @property
    def is_idle(self) -> bool:
        """Last observed idleness (False before any observation)."""
        return bool(self._is_idle)

    @property
    def passive(self) -> bool:
        """True when observations cannot call back into anyone — disabled,
        or enabled with no subscribers.  A passive detector only records the
        last observation, so a batched advance may collapse a span's
        repeated identical observations into one."""
        return not self.enabled or not self._listeners

    def note_queue_length(self, runnable_jobs: int) -> None:
        """Observe the current number of runnable jobs on the core."""
        idle = runnable_jobs == 0
        if idle == self._is_idle:
            return
        self._is_idle = idle
        if not self.enabled:
            return
        for listener in self._listeners:
            listener(self.core_id, idle)
