"""The simulated hardware substrate.

The paper's prototype ran on a real 4-way Power4+ p630; this package is the
analytic, event-driven stand-in (see DESIGN.md §2 for the substitution
argument).  It exposes exactly the interfaces the fvsst daemon consumed on
real hardware — per-core performance counters, a frequency/throttle
actuator, a system power meter, power supplies — while executing
phase-structured workloads whose ground truth includes the effects the
paper names as predictor error sources (unmodeled stalls, latency jitter,
phase transitions inside sampling intervals, the hot idle loop).

Modules:

* :mod:`~repro.sim.rng` — seeded randomness helpers.
* :mod:`~repro.sim.events` / :mod:`~repro.sim.clock` — event queue and time.
* :mod:`~repro.sim.counters` — counter banks, snapshots, noisy readers.
* :mod:`~repro.sim.throttle` — the fetch-throttle actuator.
* :mod:`~repro.sim.idle` — hot idle loop and idle detection.
* :mod:`~repro.sim.os_sched` — the per-core round-robin dispatcher.
* :mod:`~repro.sim.core` — a simulated Power4+ core.
* :mod:`~repro.sim.powermeter` — system power measurement.
* :mod:`~repro.sim.machine` — the SMP machine (cores + PSUs + meter).
* :mod:`~repro.sim.kernel` — batched advance over event-free spans.
* :mod:`~repro.sim.driver` — the simulation loop tying it together.
* :mod:`~repro.sim.network` / :mod:`~repro.sim.node` /
  :mod:`~repro.sim.cluster` — multi-node clusters over a latency network.
"""

from .rng import make_rng, spawn_rngs
from .events import Event, EventQueue
from .clock import SimClock
from .counters import CounterBank, CounterSnapshot, CounterSample, CounterReader
from .throttle import ThrottleActuator
from .idle import IdleStyle, IdleDetector
from .os_sched import Dispatcher
from .core import SimulatedCore, CoreConfig
from .powermeter import PowerMeter
from .machine import SMPMachine, MachineConfig
from .kernel import advance_machines
from .driver import Simulation
from .network import Network, NetworkConfig
from .node import ClusterNode
from .cluster import Cluster

__all__ = [
    "make_rng",
    "spawn_rngs",
    "Event",
    "EventQueue",
    "SimClock",
    "CounterBank",
    "CounterSnapshot",
    "CounterSample",
    "CounterReader",
    "ThrottleActuator",
    "IdleStyle",
    "IdleDetector",
    "Dispatcher",
    "SimulatedCore",
    "CoreConfig",
    "PowerMeter",
    "SMPMachine",
    "MachineConfig",
    "advance_machines",
    "Simulation",
    "Network",
    "NetworkConfig",
    "ClusterNode",
    "Cluster",
]
