"""repro — reproduction of Kotla, Ghiasi, Keller & Rawson (2005),
"Scheduling Processor Voltage and Frequency in Server and Cluster Systems".

The package implements the paper's fvsst frequency/voltage scheduler, the
counter-driven performance model it relies on, an analytic Power4+ SMP and
cluster simulator that stands in for the authors' pSeries p630 testbed,
workload models for their benchmarks, the baseline policies they argue
against, and one experiment per published table and figure.

Quick start::

    from repro import (SMPMachine, MachineConfig, Simulation,
                       FvsstDaemon, DaemonConfig, profile_by_name)

    machine = SMPMachine(MachineConfig(num_cores=4), seed=1)
    machine.assign(3, profile_by_name("mcf").job())
    daemon = FvsstDaemon(machine, DaemonConfig(power_limit_w=294.0), seed=2)
    sim = Simulation(machine)
    daemon.attach(sim)
    sim.run_for(10.0)
    print([f / 1e6 for f in machine.frequency_vector_hz()])

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from . import constants, units
from .errors import (
    ReproError,
    ConfigError,
    ModelError,
    PowerModelError,
    FrequencyError,
    BudgetError,
    InfeasibleBudgetError,
    SimulationError,
    SchedulingError,
    WorkloadError,
    CascadeFailureError,
)
from .model import (
    MemoryLatencyProfile,
    POWER4_LATENCIES,
    MemoryCounts,
    WorkloadSignature,
    perf,
    perf_loss,
    saturation_frequency,
    ideal_frequency,
)
from .power import (
    CmosPowerModel,
    FrequencyPowerTable,
    POWER4_TABLE,
    WORKED_EXAMPLE_TABLE,
    fit_lava_model,
    PowerSupply,
    SupplyBank,
    PowerBudget,
    ComplianceMonitor,
)
from .sim import (
    SMPMachine,
    MachineConfig,
    SimulatedCore,
    CoreConfig,
    Simulation,
    Cluster,
    ClusterNode,
    IdleStyle,
)
from .workloads import (
    Phase,
    Job,
    SyntheticBenchmark,
    two_phase_benchmark,
    profile_by_name,
    ALL_PROFILES,
    WorkloadGenerator,
    tiered_cluster_assignment,
)
from .core import (
    FvsstDaemon,
    DaemonConfig,
    OverheadModel,
    FrequencyVoltageScheduler,
    ContinuousFrequencyScheduler,
    ProcessorView,
    Schedule,
    CounterPredictor,
    AlphaPredictor,
    NoManagementGovernor,
    UniformScalingGovernor,
    PowerDownGovernor,
    UtilizationGovernor,
    StaticOracleGovernor,
)
from .cluster import (
    ClusterCoordinator,
    CoordinatorConfig,
    CrashWindow,
    FaultSchedule,
    fault_scenario,
)
from .core import (
    SinglePassScheduler,
    MultithreadedFvsstDaemon,
)
from .power import ThermalMonitor, ThermalParams
from .workloads import ServerSource, RequestSpec, diurnal_rate
from .scenario import Scenario, ScenarioResult
from . import telemetry
from .telemetry import (
    Telemetry,
    NullTelemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
    telemetry_snapshot,
)

__version__ = "1.0.0"

__all__ = [
    "constants",
    "units",
    # errors
    "ReproError",
    "ConfigError",
    "ModelError",
    "PowerModelError",
    "FrequencyError",
    "BudgetError",
    "InfeasibleBudgetError",
    "SimulationError",
    "SchedulingError",
    "WorkloadError",
    "CascadeFailureError",
    # model
    "MemoryLatencyProfile",
    "POWER4_LATENCIES",
    "MemoryCounts",
    "WorkloadSignature",
    "perf",
    "perf_loss",
    "saturation_frequency",
    "ideal_frequency",
    # power
    "CmosPowerModel",
    "FrequencyPowerTable",
    "POWER4_TABLE",
    "WORKED_EXAMPLE_TABLE",
    "fit_lava_model",
    "PowerSupply",
    "SupplyBank",
    "PowerBudget",
    "ComplianceMonitor",
    # sim
    "SMPMachine",
    "MachineConfig",
    "SimulatedCore",
    "CoreConfig",
    "Simulation",
    "Cluster",
    "ClusterNode",
    "IdleStyle",
    # workloads
    "Phase",
    "Job",
    "SyntheticBenchmark",
    "two_phase_benchmark",
    "profile_by_name",
    "ALL_PROFILES",
    "WorkloadGenerator",
    "tiered_cluster_assignment",
    # fvsst
    "FvsstDaemon",
    "DaemonConfig",
    "OverheadModel",
    "FrequencyVoltageScheduler",
    "ContinuousFrequencyScheduler",
    "ProcessorView",
    "Schedule",
    "CounterPredictor",
    "AlphaPredictor",
    "NoManagementGovernor",
    "UniformScalingGovernor",
    "PowerDownGovernor",
    "UtilizationGovernor",
    "StaticOracleGovernor",
    # cluster
    "ClusterCoordinator",
    "CrashWindow",
    "FaultSchedule",
    "fault_scenario",
    "CoordinatorConfig",
    # extensions
    "SinglePassScheduler",
    "MultithreadedFvsstDaemon",
    "ThermalMonitor",
    "ThermalParams",
    "ServerSource",
    "RequestSpec",
    "diurnal_rate",
    "Scenario",
    "ScenarioResult",
    # telemetry
    "telemetry",
    "Telemetry",
    "NullTelemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "telemetry_snapshot",
]
