"""Paper-vs-measured validation.

Encodes the paper's published numbers (and the shapes EXPERIMENTS.md
commits to) as machine-checkable expectations, runs the experiments, and
produces a pass/divergence report.  ``fvsst validate`` prints it; a test
asserts that every check tagged ``must_hold`` passes and that the two
*documented* divergences (D1/D2 in EXPERIMENTS.md) are flagged as such
rather than silently absorbed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from .analysis.report import ExperimentResult
from .analysis.tables import render_table
from .errors import ExperimentError

__all__ = ["CheckKind", "Expectation", "CheckOutcome", "ValidationReport",
           "run_validation", "EXPECTATIONS"]


class CheckKind(enum.Enum):
    """How strictly an expectation binds."""

    #: Must reproduce within tolerance; failure is a regression.
    MUST_HOLD = "must_hold"
    #: Known, documented divergence: the check *records* the measured
    #: value and asserts it stays inside the documented divergent band.
    DOCUMENTED_DIVERGENCE = "documented_divergence"


@dataclass(frozen=True)
class Expectation:
    """One checkable claim about one experiment."""

    experiment_id: str
    name: str
    #: Paper value (or None for pure shape checks).
    paper_value: float | None
    #: Extractor from the experiment result to the measured value.
    extract: Callable[[ExperimentResult], float]
    #: Inclusive acceptance band for the measured value.
    low: float
    high: float
    kind: CheckKind = CheckKind.MUST_HOLD


@dataclass(frozen=True)
class CheckOutcome:
    expectation: Expectation
    measured: float
    passed: bool


@dataclass
class ValidationReport:
    outcomes: list[CheckOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(o.passed for o in self.outcomes)

    @property
    def failures(self) -> list[CheckOutcome]:
        return [o for o in self.outcomes if not o.passed]

    def render(self) -> str:
        rows = []
        for o in self.outcomes:
            e = o.expectation
            rows.append((
                e.experiment_id,
                e.name,
                "-" if e.paper_value is None else e.paper_value,
                round(o.measured, 3),
                f"[{e.low:g}, {e.high:g}]",
                e.kind.value,
                "PASS" if o.passed else "FAIL",
            ))
        return render_table(
            ("experiment", "check", "paper", "measured", "band", "kind",
             "status"),
            rows, title="Paper-vs-measured validation",
        )


def _t3(row_label: str, app: str) -> Callable[[ExperimentResult], float]:
    def extract(result: ExperimentResult) -> float:
        table = result.tables[0]
        idx = table.headers.index(app)
        for row in table.rows:
            if row[0] == row_label:
                return float(row[idx])
        raise ExperimentError(f"no row {row_label!r}")
    return extract


def _scalar(key: str) -> Callable[[ExperimentResult], float]:
    return lambda result: float(result.scalars[key])


#: The validation suite.  Bands reflect run-to-run variation in fast mode.
EXPECTATIONS: tuple[Expectation, ...] = (
    # Table 1 is exact by construction.
    Expectation("table1", "P(1000 MHz)", 140.0,
                lambda r: float(r.tables[0].column("Power (W)")[-1]),
                140.0, 140.0),
    Expectation("table1", "CMOS fit max rel err", None,
                _scalar("fit_max_rel_error"), 0.0, 0.12),
    # Table 2: deviations order 0.01; starred column small.
    Expectation("table2", "CPU3* @ 100% intensity", 0.009,
                lambda r: float(r.tables[0].column("CPU3*")[0]),
                0.0, 0.05),
    # Table 3 anchors.
    Expectation("table3", "gzip perf @ 75 W", 0.79, _t3("Perf @ 75W", "gzip"),
                0.75, 0.87),
    Expectation("table3", "gzip energy @ 140 W", 0.94,
                _t3("Energy @ 140W", "gzip"), 0.88, 1.0),
    Expectation("table3", "mcf perf @ 75 W", 0.99, _t3("Perf @ 75W", "mcf"),
                0.95, 1.0),
    Expectation("table3", "mcf energy @ 35 W", 0.31,
                _t3("Energy @ 35W", "mcf"), 0.24, 0.38),
    Expectation("table3", "mcf perf @ 35 W (D1)", 0.81,
                _t3("Perf @ 35W", "mcf"), 0.85, 1.0,
                kind=CheckKind.DOCUMENTED_DIVERGENCE),
    Expectation("table3", "health perf @ 35 W (D1)", 0.72,
                _t3("Perf @ 35W", "health"), 0.85, 1.0,
                kind=CheckKind.DOCUMENTED_DIVERGENCE),
    # Figure 4: overhead ceiling (D2: worst-case intensity flips, but the
    # magnitude stays small).
    Expectation("fig4", "max throughput impact (D2)", 0.03,
                _scalar("max_impact_fraction"), 0.0, 0.08,
                kind=CheckKind.DOCUMENTED_DIVERGENCE),
    # Figure 6 shapes.
    Expectation("fig6", "memory phase flat at 35 W", 1.0,
                _scalar("mem_phase_at_min_cap"), 0.95, 1.05),
    Expectation("fig6", "CPU phase sublinear at 35 W", None,
                _scalar("cpu_phase_at_min_cap"), 0.5, 0.75),
    # Figure 8 modal frequencies.
    Expectation("fig8", "mcf modal @ no cap", 650.0,
                _scalar("mcf@1000_modal_mhz"), 650.0, 650.0),
    Expectation("fig8", "mcf modal @ 750 cap", 650.0,
                _scalar("mcf@750_modal_mhz"), 650.0, 650.0),
    Expectation("fig8", "gzip modal @ no cap", 1000.0,
                _scalar("gzip@1000_modal_mhz"), 950.0, 1000.0),
    # Worked example: exact.
    Expectation("worked_example", "T0 total power", 289.0,
                _scalar("t0_total_power_w"), 289.0, 289.0),
    Expectation("worked_example", "T1 total power", 282.0,
                _scalar("t1_total_power_w"), 282.0, 282.0),
    # Extensions.
    Expectation("failover", "response beats DeltaT", None,
                _scalar("fvsst_response_s"), 0.0, 0.99),
    Expectation("cluster_cap", "fvsst beats uniform", None,
                lambda r: (r.scalars["fvsst_norm_throughput"]
                           - r.scalars["uniform_norm_throughput"]),
                0.01, 1.0),
)


def run_validation(*, fast: bool = True, seed: int = 2005,
                   expectations: tuple[Expectation, ...] | None = None,
                   results: dict[str, ExperimentResult] | None = None
                   ) -> ValidationReport:
    """Run every referenced experiment once and score the expectations.

    ``results`` lets a caller that already ran the experiments (the
    digest's parallel runner) supply them instead of re-executing;
    anything missing still runs here.
    """
    from .experiments import run_experiment

    if expectations is None:
        expectations = EXPECTATIONS
    needed = sorted({e.experiment_id for e in expectations})
    results = dict(results) if results is not None else {}
    for eid in needed:
        if eid not in results:
            results[eid] = run_experiment(eid, seed=seed, fast=fast)
    report = ValidationReport()
    for expectation in expectations:
        measured = expectation.extract(results[expectation.experiment_id])
        passed = expectation.low <= measured <= expectation.high
        report.outcomes.append(CheckOutcome(
            expectation=expectation, measured=measured, passed=passed,
        ))
    return report
