"""Phase detection over logged IPC series.

The prototype's logs exist "for monitoring and data analysis" (Section 6);
one natural analysis is recovering the program's phase structure from the
measured IPC stream — useful for checking that the scheduler's choice of
``T`` actually resolves the phases present (Figure 5's discussion: "the
settings of T and t are small enough to detect phase behavior ... [they]
obscure smaller phases").

Detection is deliberately simple and robust: a relative-change test
against a short trailing baseline, with a minimum dwell so counter noise
does not fragment phases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExperimentError
from ..units import check_positive

__all__ = ["PhaseSegment", "detect_phases", "phase_summary"]


@dataclass(frozen=True, slots=True)
class PhaseSegment:
    """One detected stationary stretch of the IPC series."""

    start_s: float
    end_s: float
    mean_ipc: float
    samples: int

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def detect_phases(times, ipc, *, rel_change: float = 0.3,
                  min_samples: int = 3) -> list[PhaseSegment]:
    """Split an IPC series into stationary segments.

    A new segment opens when a sample deviates from the running mean of
    the current segment by more than ``rel_change`` (relative) and the
    current segment has at least ``min_samples`` samples — the dwell that
    keeps single-sample noise from splitting phases.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(ipc, dtype=float)
    if t.shape != v.shape or t.ndim != 1:
        raise ExperimentError("times and ipc must be matching 1-D arrays")
    if t.size == 0:
        raise ExperimentError("empty series")
    check_positive(rel_change, "rel_change")
    if min_samples < 1:
        raise ExperimentError("min_samples must be >= 1")

    segments: list[PhaseSegment] = []
    start = 0
    total = v[0]
    count = 1
    for i in range(1, t.size):
        mean = total / count
        deviates = abs(v[i] - mean) > rel_change * max(mean, 1e-12)
        if deviates and count >= min_samples:
            segments.append(PhaseSegment(
                start_s=float(t[start]), end_s=float(t[i]),
                mean_ipc=float(mean), samples=count,
            ))
            start, total, count = i, v[i], 1
        else:
            total += v[i]
            count += 1
    segments.append(PhaseSegment(
        start_s=float(t[start]), end_s=float(t[-1]),
        mean_ipc=float(total / count), samples=count,
    ))
    return segments


def phase_summary(segments: list[PhaseSegment]) -> dict[str, float]:
    """Aggregate statistics of a detected segmentation."""
    if not segments:
        raise ExperimentError("no segments to summarise")
    durations = np.array([s.duration_s for s in segments])
    means = np.array([s.mean_ipc for s in segments])
    return {
        "num_phases": float(len(segments)),
        "mean_duration_s": float(durations.mean()),
        "min_duration_s": float(durations.min()),
        "ipc_spread": float(means.max() - means.min()),
    }
