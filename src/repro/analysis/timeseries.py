"""Step-function time series from schedule/counter logs.

Scheduler decisions hold until superseded, so the natural representation is
a right-continuous step function.  :class:`StepSeries` wraps (times,
values) with evaluation, integration, and residency queries; the figure
experiments build their curves from these.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExperimentError

__all__ = ["StepSeries", "resample_step", "moving_average"]


@dataclass(frozen=True)
class StepSeries:
    """A right-continuous step function ``v(t) = values[i]`` for
    ``times[i] <= t < times[i+1]``."""

    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        t = np.asarray(self.times, dtype=float)
        v = np.asarray(self.values, dtype=float)
        if t.ndim != 1 or t.shape != v.shape:
            raise ExperimentError("times and values must be matching 1-D arrays")
        if t.size == 0:
            raise ExperimentError("empty series")
        if np.any(np.diff(t) < 0):
            raise ExperimentError("times must be non-decreasing")
        object.__setattr__(self, "times", t)
        object.__setattr__(self, "values", v)

    def at(self, t: float) -> float:
        """Value in force at time ``t`` (first value before the series starts)."""
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        return float(self.values[max(idx, 0)])

    def integral(self, t0: float, t1: float) -> float:
        """Integral of the step function over ``[t0, t1]``."""
        if t1 < t0:
            raise ExperimentError(f"inverted interval [{t0}, {t1}]")
        edges = np.concatenate(([t0], self.times[(self.times > t0)
                                                 & (self.times < t1)], [t1]))
        total = 0.0
        for a, b in zip(edges[:-1], edges[1:]):
            total += self.at(a) * (b - a)
        return total

    def mean(self, t0: float, t1: float) -> float:
        """Time-weighted mean over ``[t0, t1]``."""
        if t1 <= t0:
            raise ExperimentError(f"degenerate interval [{t0}, {t1}]")
        return self.integral(t0, t1) / (t1 - t0)

    def residency(self, t0: float, t1: float) -> dict[float, float]:
        """Fraction of ``[t0, t1]`` spent at each distinct value."""
        if t1 <= t0:
            raise ExperimentError(f"degenerate interval [{t0}, {t1}]")
        edges = np.concatenate(([t0], self.times[(self.times > t0)
                                                 & (self.times < t1)], [t1]))
        shares: dict[float, float] = {}
        for a, b in zip(edges[:-1], edges[1:]):
            v = self.at(a)
            shares[v] = shares.get(v, 0.0) + (b - a)
        span = t1 - t0
        return {v: s / span for v, s in sorted(shares.items())}


def resample_step(series: StepSeries, times: np.ndarray) -> np.ndarray:
    """Evaluate a step series on a fixed grid (for aligned comparisons)."""
    grid = np.asarray(times, dtype=float)
    return np.array([series.at(t) for t in grid])


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge shrinkage (for noisy IPC plots)."""
    v = np.asarray(values, dtype=float)
    if window < 1:
        raise ExperimentError("window must be >= 1")
    if window == 1 or v.size == 0:
        return v.copy()
    kernel = np.ones(min(window, v.size))
    smoothed = np.convolve(v, kernel, mode="same")
    norm = np.convolve(np.ones_like(v), kernel, mode="same")
    return smoothed / norm
