"""Structured experiment results.

Every experiment returns an :class:`ExperimentResult` so benches, the CLI,
and EXPERIMENTS.md generation consume one shape: an id tying it to the
paper artifact, tabular and/or series payloads, and free-form notes about
where the reproduction diverges and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ExperimentError
from .tables import render_series, render_table

__all__ = ["TableResult", "SeriesResult", "ExperimentResult"]


@dataclass(frozen=True)
class TableResult:
    """One table artifact (headers + rows)."""

    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]
    title: str = ""

    def render(self, *, precision: int = 3) -> str:
        return render_table(self.headers, self.rows,
                            title=self.title or None, precision=precision)

    def column(self, name: str) -> list[object]:
        """Extract one column by header name."""
        try:
            idx = self.headers.index(name)
        except ValueError:
            raise ExperimentError(
                f"no column {name!r}; available: {list(self.headers)}"
            ) from None
        return [row[idx] for row in self.rows]


@dataclass(frozen=True)
class SeriesResult:
    """One figure-style artifact: shared x plus named y series."""

    x_label: str
    x: tuple[object, ...]
    series: dict[str, tuple[float, ...]]
    title: str = ""

    def render(self, *, precision: int = 3) -> str:
        labels = list(self.series)
        return render_series(self.x_label, labels, list(self.x),
                             [list(self.series[k]) for k in labels],
                             title=self.title or None, precision=precision)

    def y(self, name: str) -> tuple[float, ...]:
        try:
            return self.series[name]
        except KeyError:
            raise ExperimentError(
                f"no series {name!r}; available: {list(self.series)}"
            ) from None


@dataclass
class ExperimentResult:
    """Everything an experiment produced."""

    #: Paper artifact id, e.g. ``"table3"`` or ``"fig6"``.
    experiment_id: str
    description: str
    tables: list[TableResult] = field(default_factory=list)
    series: list[SeriesResult] = field(default_factory=list)
    #: Scalar headline numbers, e.g. response times.
    scalars: dict[str, float] = field(default_factory=dict)
    #: Divergence notes and caveats for EXPERIMENTS.md.
    notes: list[str] = field(default_factory=list)

    def render(self, *, precision: int = 3) -> str:
        """Full plain-text report."""
        parts = [f"== {self.experiment_id}: {self.description} =="]
        for table in self.tables:
            parts.append(table.render(precision=precision))
        for series in self.series:
            parts.append(series.render(precision=precision))
        if self.scalars:
            parts.append("\n".join(
                f"{k} = {v:.{precision}f}" for k, v in self.scalars.items()
            ))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)
