"""Plain-text rendering of experiment tables and series.

Every experiment prints "the same rows/series the paper reports"; these are
the shared formatters.  Output is deterministic, alignment-padded ASCII —
diffable in CI and pasteable into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ExperimentError

__all__ = ["render_table", "render_series"]


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], *,
                 title: str | None = None, precision: int = 3) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ExperimentError("table needs headers")
    str_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        str_rows.append([_fmt(v, precision) for v in row])
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(x_label: str, y_labels: Sequence[str],
                  x: Sequence[object], ys: Sequence[Sequence[object]], *,
                  title: str | None = None, precision: int = 3) -> str:
    """Render one or more aligned series against a shared x column."""
    if len(ys) != len(y_labels):
        raise ExperimentError("one label per series required")
    for y in ys:
        if len(y) != len(x):
            raise ExperimentError("series length differs from x length")
    headers = [x_label, *y_labels]
    rows = [[xv, *(y[i] for y in ys)] for i, xv in enumerate(x)]
    return render_table(headers, rows, title=title, precision=precision)
