"""Evaluation metrics (Section 7.2).

"The predictor component must provide accurate predictions.  fvsst, as a
whole, must not impose a significant performance impact ...  it is also
important to study the impact on power and performance."  The helpers here
are the concrete scoring functions behind those three requirements.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ExperimentError
from ..units import check_positive
from ..workloads.job import Job

__all__ = [
    "throughput_of_job",
    "normalized_performance",
    "mean_absolute_deviation",
    "performance_loss_fraction",
]


def throughput_of_job(job: Job) -> float:
    """Instructions per second achieved by a completed ONCE-mode job."""
    elapsed = job.elapsed_s()
    if elapsed is None or elapsed <= 0.0:
        raise ExperimentError(
            f"job {job.name!r} has not completed; no throughput to report"
        )
    return job.instructions_retired / elapsed


def normalized_performance(measured: float, baseline: float) -> float:
    """Performance relative to an unconstrained baseline.

    Table 3's "Perf @ cap" rows: 1.0 means no loss, smaller means slower.
    """
    check_positive(baseline, "baseline")
    if measured < 0:
        raise ExperimentError(f"negative measured performance {measured}")
    return measured / baseline


def performance_loss_fraction(measured: float, baseline: float) -> float:
    """``1 - normalized_performance`` (positive = loss)."""
    return 1.0 - normalized_performance(measured, baseline)


def mean_absolute_deviation(predicted: Sequence[float],
                            actual: Sequence[float]) -> float:
    """Mean |predicted - actual| — Table 2's "IPC deviation" metric."""
    p = np.asarray(predicted, dtype=float)
    a = np.asarray(actual, dtype=float)
    if p.shape != a.shape:
        raise ExperimentError(
            f"prediction/actual shape mismatch: {p.shape} vs {a.shape}"
        )
    if p.size == 0:
        raise ExperimentError("no prediction pairs to score")
    return float(np.mean(np.abs(p - a)))
