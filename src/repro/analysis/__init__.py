"""Post-processing: metrics, time-series utilities, table rendering.

The fvsst prototype relied on post-processing its logs to evaluate power
savings (Section 6); this package is that tooling, shared by every
experiment and bench.
"""

from .metrics import (
    normalized_performance,
    throughput_of_job,
    mean_absolute_deviation,
    performance_loss_fraction,
)
from .timeseries import StepSeries, resample_step, moving_average
from .tables import render_table, render_series
from .report import ExperimentResult, SeriesResult, TableResult
from .charts import line_chart, bar_chart, sparkline
from .export import save_result, load_result, export_csv, result_to_dict, result_from_dict
from .phases import PhaseSegment, detect_phases, phase_summary

__all__ = [
    "normalized_performance",
    "throughput_of_job",
    "mean_absolute_deviation",
    "performance_loss_fraction",
    "StepSeries",
    "resample_step",
    "moving_average",
    "render_table",
    "render_series",
    "ExperimentResult",
    "SeriesResult",
    "TableResult",
    "line_chart",
    "bar_chart",
    "sparkline",
    "save_result",
    "load_result",
    "export_csv",
    "result_to_dict",
    "result_from_dict",
    "PhaseSegment",
    "detect_phases",
    "phase_summary",
]
