"""Plain-text charts for terminal output.

Dependency-free renderers used by the CLI's ``--chart`` flag and the
examples: a multi-series line chart on a character grid, horizontal bars,
and compact sparklines.  They intentionally trade beauty for determinism —
output is stable across runs and diffs cleanly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ExperimentError

__all__ = ["line_chart", "bar_chart", "sparkline"]

_SPARK_LEVELS = " .:-=+*#%@"
_SERIES_MARKS = "ox+*#@"


def _bounds(values: np.ndarray) -> tuple[float, float]:
    lo, hi = float(values.min()), float(values.max())
    if hi == lo:
        hi = lo + 1.0
    return lo, hi


def line_chart(x: Sequence[float], series: dict[str, Sequence[float]], *,
               width: int = 64, height: int = 16,
               title: str | None = None) -> str:
    """Render one or more y-series against shared x on a character grid."""
    if not series:
        raise ExperimentError("no series to chart")
    if width < 8 or height < 4:
        raise ExperimentError("chart too small")
    xv = np.asarray(x, dtype=float)
    if xv.size < 2:
        raise ExperimentError("need at least two points")
    ys = {k: np.asarray(v, dtype=float) for k, v in series.items()}
    for k, v in ys.items():
        if v.shape != xv.shape:
            raise ExperimentError(f"series {k!r} length mismatch")

    all_y = np.concatenate(list(ys.values()))
    y_lo, y_hi = _bounds(all_y)
    x_lo, x_hi = _bounds(xv)

    grid = [[" "] * width for _ in range(height)]
    for si, (name, yv) in enumerate(ys.items()):
        mark = _SERIES_MARKS[si % len(_SERIES_MARKS)]
        for xi, yi in zip(xv, yv):
            col = int(round((xi - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((yi - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>10.3g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:>10.3g} +" + "-" * width + "+")
    lines.append(" " * 12 + f"{x_lo:<.3g}" + " " * max(1, width - 12)
                 + f"{x_hi:>.3g}")
    legend = "  ".join(
        f"{_SERIES_MARKS[i % len(_SERIES_MARKS)]}={name}"
        for i, name in enumerate(ys)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def bar_chart(labels: Sequence[str], values: Sequence[float], *,
              width: int = 48, title: str | None = None,
              unit: str = "") -> str:
    """Horizontal bars, scaled to the largest value."""
    if len(labels) != len(values):
        raise ExperimentError("one label per value required")
    if not labels:
        raise ExperimentError("nothing to chart")
    vals = np.asarray(values, dtype=float)
    if np.any(vals < 0):
        raise ExperimentError("bar_chart takes non-negative values")
    vmax = float(vals.max()) or 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, vals):
        filled = int(round(width * value / vmax))
        lines.append(
            f"{str(label):>{label_w}} |{'#' * filled}{' ' * (width - filled)}"
            f"| {value:.3g}{unit}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line intensity strip of a series."""
    vals = np.asarray(values, dtype=float)
    if vals.size == 0:
        raise ExperimentError("nothing to chart")
    lo, hi = _bounds(vals)
    span = hi - lo
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)
