"""Persisting experiment results.

Reproduction artifacts should outlive the process that made them: this
module serialises :class:`~repro.analysis.report.ExperimentResult` objects
to JSON (full fidelity, reloadable) and CSV (one file per table/series,
spreadsheet-friendly).  ``fvsst run <id> --output DIR`` writes both.

JSON only — no pickle — so exported artifacts are safe to share and diff.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..errors import ExperimentError
from .report import ExperimentResult, SeriesResult, TableResult

__all__ = ["result_to_dict", "result_from_dict", "save_result",
           "load_result", "export_csv"]

_FORMAT_VERSION = 1


def result_to_dict(result: ExperimentResult) -> dict:
    """Serialise a result to plain JSON-compatible data."""
    return {
        "version": _FORMAT_VERSION,
        "experiment_id": result.experiment_id,
        "description": result.description,
        "tables": [
            {"title": t.title, "headers": list(t.headers),
             "rows": [list(row) for row in t.rows]}
            for t in result.tables
        ],
        "series": [
            {"title": s.title, "x_label": s.x_label, "x": list(s.x),
             "series": {k: list(v) for k, v in s.series.items()}}
            for s in result.series
        ],
        "scalars": dict(result.scalars),
        "notes": list(result.notes),
    }


def result_from_dict(data: dict) -> ExperimentResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ExperimentError(f"unsupported result version {version!r}")
    try:
        return ExperimentResult(
            experiment_id=data["experiment_id"],
            description=data["description"],
            tables=[
                TableResult(title=t["title"],
                            headers=tuple(t["headers"]),
                            rows=tuple(tuple(r) for r in t["rows"]))
                for t in data["tables"]
            ],
            series=[
                SeriesResult(title=s["title"], x_label=s["x_label"],
                             x=tuple(s["x"]),
                             series={k: tuple(v)
                                     for k, v in s["series"].items()})
                for s in data["series"]
            ],
            scalars=dict(data["scalars"]),
            notes=list(data["notes"]),
        )
    except (KeyError, TypeError) as exc:
        raise ExperimentError(f"malformed result payload: {exc}") from exc


def save_result(result: ExperimentResult, path: str | Path) -> Path:
    """Write one result as JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=2))
    return path


def load_result(path: str | Path) -> ExperimentResult:
    """Load a result written by :func:`save_result`."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"cannot load result from {path}: {exc}") \
            from exc
    return result_from_dict(data)


def _safe(name: str) -> str:
    return "".join(c if c.isalnum() or c in "-_" else "_" for c in name)


def export_csv(result: ExperimentResult, directory: str | Path) -> list[Path]:
    """Write each table and series as a CSV file; returns paths written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    for i, table in enumerate(result.tables):
        stem = _safe(table.title) or f"table{i}"
        path = directory / f"{result.experiment_id}_{stem}.csv"
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(table.headers)
            writer.writerows(table.rows)
        written.append(path)

    for i, series in enumerate(result.series):
        stem = _safe(series.title) or f"series{i}"
        path = directory / f"{result.experiment_id}_{stem}.csv"
        labels = list(series.series)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow([series.x_label, *labels])
            for j, x in enumerate(series.x):
                writer.writerow([x, *(series.series[k][j] for k in labels)])
        written.append(path)

    if result.scalars:
        path = directory / f"{result.experiment_id}_scalars.csv"
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(("name", "value"))
            writer.writerows(sorted(result.scalars.items()))
        written.append(path)
    return written
