"""Fan registered experiments across processes, with result caching.

The serial ``fvsst digest`` loop becomes: probe the cache for every
requested experiment, run the misses — across a
``concurrent.futures.ProcessPoolExecutor`` when ``jobs > 1`` — and hand
back results keyed by experiment id, in the caller's order.

Determinism: every task receives exactly the kwargs the serial loop
would pass (the root seed included; experiments derive their internal
streams from it via ``SeedSequence`` spawning, never from global state),
tasks are submitted and collected in request order, and *all* execution
paths round-trip results through the canonical JSON serialisation — so
the rendered output of ``--jobs N`` is byte-identical to ``--jobs 1``,
and a warm cache is byte-identical to a cold run.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Sequence

from ..analysis.export import result_from_dict, result_to_dict
from ..analysis.report import ExperimentResult
from ..telemetry import Telemetry, get_telemetry
from .cache import ResultCache
from .pool import effective_jobs, worker_init

__all__ = ["ParallelRunner"]


def _run_task(task: tuple[str, int, bool]) -> dict:
    """One experiment in one worker; returns the JSON-shaped result.

    Module-level (picklable) and self-importing, so a forked or spawned
    worker can execute it with nothing but the task tuple.
    """
    experiment_id, seed, fast = task
    from ..experiments import run_experiment
    return result_to_dict(run_experiment(experiment_id, seed=seed, fast=fast))


class ParallelRunner:
    """Run many registered experiments, cached and optionally pooled."""

    def __init__(self, jobs: int | None = None,
                 cache_dir: str | Path | None = None, *,
                 telemetry: Telemetry | None = None) -> None:
        self.jobs = jobs
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.cache = None if cache_dir is None else ResultCache(
            cache_dir, telemetry=self.telemetry)
        m = self.telemetry.metrics
        self._m_tasks = m.counter(
            "exec_pool_tasks_total",
            "Experiment tasks executed by the runner (cache misses)")
        self._m_workers = m.gauge(
            "exec_pool_workers",
            "Worker processes used by the last runner fan-out")

    def run_many(self, experiment_ids: Sequence[str], *, seed: int,
                 fast: bool) -> dict[str, ExperimentResult]:
        """Run (or recall) every experiment; results in request order."""
        ids = list(dict.fromkeys(experiment_ids))
        kwargs = {"seed": seed, "fast": fast}
        results: dict[str, ExperimentResult] = {}
        pending = []
        for eid in ids:
            cached = self.cache.get(eid, kwargs) if self.cache else None
            if cached is not None:
                results[eid] = cached
            else:
                pending.append(eid)

        width = min(effective_jobs(self.jobs), len(pending))
        if self.telemetry.enabled:
            self._m_tasks.inc(len(pending))
            self._m_workers.set(max(width, 1 if pending else 0))
        tasks = [(eid, seed, fast) for eid in pending]
        if width > 1:
            with ProcessPoolExecutor(max_workers=width,
                                     initializer=worker_init) as pool:
                payloads = list(pool.map(_run_task, tasks))
        else:
            payloads = [_run_task(t) for t in tasks]
        for eid, payload in zip(pending, payloads):
            # The same JSON round-trip on every path (pooled, serial,
            # cached) keeps renders byte-identical across all of them.
            results[eid] = result_from_dict(payload)
            if self.cache is not None:
                self.cache.put(eid, kwargs, results[eid])
        return {eid: results[eid] for eid in ids}
