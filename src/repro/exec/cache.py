"""Content-addressed on-disk cache of experiment results.

A cached entry is keyed by *everything that determines the result*: the
experiment id, a canonical JSON digest of the run kwargs (seed, fast
mode), and a fingerprint of the whole ``repro`` source tree.  Any code
edit, seed change, or mode change therefore misses cleanly; a hit is the
exact JSON round-trip of the original :class:`ExperimentResult` (the
same serialisation ``fvsst run --output`` ships), so a warm ``fvsst
digest`` renders byte-identical markdown to a cold one.

Entries are plain JSON files — safe to inspect, diff, and delete; the
cache directory *is* the cache, there is no index to corrupt.  Unreadable
or stale-format entries degrade to misses.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Mapping

from ..analysis.export import result_from_dict, result_to_dict
from ..analysis.report import ExperimentResult
from ..errors import ExperimentError
from ..telemetry import Telemetry, get_telemetry

__all__ = ["ResultCache", "cache_key", "source_fingerprint"]

_ENTRY_VERSION = 1

#: Computed once per process: hashing ~200 source files costs a few
#: milliseconds, and the tree cannot change under a running process in a
#: way the cache should chase.
_FINGERPRINT: str | None = None


def source_fingerprint() -> str:
    """Hex digest over every ``repro`` source file (path + contents)."""
    global _FINGERPRINT
    if _FINGERPRINT is None:
        root = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _FINGERPRINT = h.hexdigest()
    return _FINGERPRINT


def cache_key(experiment_id: str, kwargs: Mapping[str, object]) -> str:
    """The content address of one (experiment, kwargs, source) triple."""
    try:
        payload = json.dumps(
            {"id": experiment_id, "kwargs": dict(kwargs),
             "src": source_fingerprint()},
            sort_keys=True,
        )
    except (TypeError, ValueError) as exc:
        raise ExperimentError(
            f"cache kwargs for {experiment_id!r} are not JSON-encodable: "
            f"{exc}"
        ) from exc
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Directory-backed result store addressed by :func:`cache_key`."""

    def __init__(self, directory: str | Path, *,
                 telemetry: Telemetry | None = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        m = self.telemetry.metrics
        self._m_hits = m.counter(
            "exec_cache_hits_total",
            "Experiment results served from the on-disk cache")
        self._m_misses = m.counter(
            "exec_cache_misses_total",
            "Experiment cache lookups that had to run the experiment")

    def path_for(self, experiment_id: str,
                 kwargs: Mapping[str, object]) -> Path:
        """Where the entry for this (experiment, kwargs) pair lives."""
        return self.directory / (
            f"{experiment_id}-{cache_key(experiment_id, kwargs)[:24]}.json"
        )

    def get(self, experiment_id: str,
            kwargs: Mapping[str, object]) -> ExperimentResult | None:
        """The cached result, or None on any kind of miss."""
        path = self.path_for(experiment_id, kwargs)
        try:
            data = json.loads(path.read_text())
            if data.get("entry_version") != _ENTRY_VERSION:
                raise ExperimentError("stale cache entry format")
            result = result_from_dict(data["result"])
        except (OSError, json.JSONDecodeError, KeyError, ExperimentError):
            if self.telemetry.enabled:
                self._m_misses.inc()
            return None
        if self.telemetry.enabled:
            self._m_hits.inc()
        return result

    def put(self, experiment_id: str, kwargs: Mapping[str, object],
            result: ExperimentResult) -> Path:
        """Store one result; returns the entry path."""
        path = self.path_for(experiment_id, kwargs)
        entry = {
            "entry_version": _ENTRY_VERSION,
            "experiment_id": experiment_id,
            "kwargs": dict(kwargs),
            "result": result_to_dict(result),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(entry, indent=2))
        tmp.replace(path)
        return path
