"""Parallel experiment execution and result caching.

The execution engine behind ``fvsst digest --jobs N --cache DIR``:

* :class:`ParallelRunner` — fans registered experiments across a
  ``ProcessPoolExecutor`` with deterministic ordering and seeding, so
  parallel output is byte-identical to serial
  (:mod:`repro.exec.runner`);
* :class:`ResultCache` — content-addressed on-disk results, keyed by
  experiment id + kwargs digest + a fingerprint of the ``repro`` source
  tree (:mod:`repro.exec.cache`);
* :func:`parallel_map` / :func:`configure` — order-preserving fan-out
  for sweep points *inside* experiments, governed by one process-global
  ``--jobs`` value and guarded against nested pools
  (:mod:`repro.exec.pool`).

Pool width, task counts, and cache hits/misses are reported through the
telemetry registry (``exec_pool_tasks_total``, ``exec_pool_workers``,
``exec_cache_hits_total``, ``exec_cache_misses_total``) and surface in
the standard Prometheus/JSONL exporters.  See docs/PERFORMANCE.md.
"""

from .cache import ResultCache, cache_key, source_fingerprint
from .pool import configure, configured_jobs, effective_jobs, parallel_map
from .runner import ParallelRunner

__all__ = [
    "ParallelRunner",
    "ResultCache",
    "cache_key",
    "source_fingerprint",
    "configure",
    "configured_jobs",
    "effective_jobs",
    "parallel_map",
]
