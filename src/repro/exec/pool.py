"""Process-pool plumbing shared by the runner and in-experiment fan-out.

One process-global job count (set by ``fvsst ... --jobs`` or
:func:`configure`) governs every :func:`parallel_map` call site, so
experiments never need their own knobs.  Worker processes are marked via
an environment flag and always report an effective width of 1 — a sweep
running *inside* a pooled experiment degrades to the serial loop instead
of forking a nested pool.

Determinism is the caller's contract and this module's guarantee:
:func:`parallel_map` preserves input order exactly, and every task
carries its own pre-derived seed (experiments spawn per-task seeds with
:func:`repro.sim.rng.spawn_seeds` *before* fanning out), so results are
independent of worker count, placement, and completion order.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, TypeVar

from ..errors import ExperimentError

__all__ = ["configure", "configured_jobs", "effective_jobs", "parallel_map",
           "worker_init"]

#: Set in every pool worker: nested parallel_map calls go serial.
_WORKER_ENV = "FVSST_POOL_WORKER"

_configured_jobs = 1

_T = TypeVar("_T")
_R = TypeVar("_R")


def configure(jobs: int) -> None:
    """Set the process-global worker count used when none is passed."""
    global _configured_jobs
    if jobs < 1:
        raise ExperimentError(f"--jobs must be >= 1, got {jobs}")
    _configured_jobs = int(jobs)


def configured_jobs() -> int:
    """The process-global worker count (1 unless configured)."""
    return _configured_jobs


def effective_jobs(requested: int | None = None) -> int:
    """The worker count a fan-out should actually use right now."""
    if os.environ.get(_WORKER_ENV):
        return 1   # already inside a pool worker: never nest
    jobs = _configured_jobs if requested is None else int(requested)
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    return jobs


def worker_init() -> None:
    """Initializer for every pool worker.

    Marks the process so nested fan-outs stay serial, and drops any
    inherited (forked) telemetry backend — workers measure nothing; the
    parent owns the counters.
    """
    os.environ[_WORKER_ENV] = "1"
    from ..telemetry import NullTelemetry, set_telemetry
    set_telemetry(NullTelemetry())


def parallel_map(fn: Callable[[_T], _R], items: Iterable[_T], *,
                 jobs: int | None = None) -> list[_R]:
    """Map a picklable module-level function over items, order-preserving.

    With an effective width of 1 (default, unconfigured, or inside a
    worker) this is exactly ``[fn(x) for x in items]`` — same process,
    same order, no pickling — which is what makes ``--jobs N`` output
    byte-identical to ``--jobs 1``.
    """
    items = list(items)
    width = min(effective_jobs(jobs), len(items))
    if width <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=width,
                             initializer=worker_init) as pool:
        return list(pool.map(fn, items))
