"""Unit conventions and conversion helpers.

Internal convention (used everywhere unless a name says otherwise):

* frequency   — hertz (``float``), e.g. ``1.0e9`` for 1 GHz
* time        — seconds
* power       — watts
* energy      — joules
* voltage     — volts

The paper quotes frequencies in MHz/GHz and memory latencies in cycles at the
nominal 1 GHz; the helpers below convert between those presentations and the
internal SI units.  Keeping conversions in one place avoids the classic
mixed-unit bug where a latency in "cycles at nominal frequency" is multiplied
by a frequency in MHz.
"""

from __future__ import annotations

import math

from .errors import UnitError

__all__ = [
    "KHZ",
    "MHZ",
    "GHZ",
    "MS",
    "US",
    "NS",
    "mhz",
    "ghz",
    "to_mhz",
    "to_ghz",
    "ms",
    "us",
    "ns",
    "to_ms",
    "cycles_to_seconds",
    "seconds_to_cycles",
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "approx_equal",
]

KHZ = 1.0e3
MHZ = 1.0e6
GHZ = 1.0e9

MS = 1.0e-3
US = 1.0e-6
NS = 1.0e-9


def mhz(value: float) -> float:
    """Convert a frequency in megahertz to hertz."""
    return float(value) * MHZ


def ghz(value: float) -> float:
    """Convert a frequency in gigahertz to hertz."""
    return float(value) * GHZ


def to_mhz(freq_hz: float) -> float:
    """Convert a frequency in hertz to megahertz."""
    return float(freq_hz) / MHZ


def to_ghz(freq_hz: float) -> float:
    """Convert a frequency in hertz to gigahertz."""
    return float(freq_hz) / GHZ


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return float(value) * MS


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return float(value) * US


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return float(value) * NS


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return float(seconds) / MS


def cycles_to_seconds(cycles: float, freq_hz: float) -> float:
    """Wall-clock duration of ``cycles`` processor cycles at ``freq_hz``.

    The paper reports memory latencies as cycle counts at the nominal 1 GHz;
    dividing by the nominal frequency recovers the constant wall-clock service
    time assumed by the model of Section 4.3.
    """
    if freq_hz <= 0:
        raise UnitError(f"frequency must be positive, got {freq_hz!r}")
    return float(cycles) / float(freq_hz)


def seconds_to_cycles(seconds: float, freq_hz: float) -> float:
    """Number of cycles at ``freq_hz`` spanned by a wall-clock duration."""
    if freq_hz <= 0:
        raise UnitError(f"frequency must be positive, got {freq_hz!r}")
    return float(seconds) * float(freq_hz)


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number > 0 and return it."""
    v = float(value)
    if not math.isfinite(v) or v <= 0:
        raise UnitError(f"{name} must be a finite positive number, got {value!r}")
    return v


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number >= 0 and return it."""
    v = float(value)
    if not math.isfinite(v) or v < 0:
        raise UnitError(f"{name} must be a finite non-negative number, got {value!r}")
    return v


def check_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    v = float(value)
    if not math.isfinite(v) or not 0.0 <= v <= 1.0:
        raise UnitError(f"{name} must lie in [0, 1], got {value!r}")
    return v


def approx_equal(a: float, b: float, *, rel: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Tolerant float comparison used by schedule/frequency bookkeeping."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)
