"""One-page digest of the whole reproduction.

``fvsst digest`` runs every registered experiment (fast mode by default)
and emits a single markdown document: headline scalars and tables per
artifact, the validation verdict on top.  Useful as a regression snapshot
— run it before and after a change and diff the two files.
"""

from __future__ import annotations

from pathlib import Path

from .analysis.report import ExperimentResult
from .errors import ExperimentError

__all__ = ["build_digest", "write_digest"]

#: Paper artifacts first, extensions after, ablations last.
_ORDER = (
    "table1", "table2", "table3",
    "fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "worked_example",
    "failover", "response_time", "thermal", "cluster_cap",
    "curtailment", "cluster_failover", "migration", "variation",
    "server_demand",
    "masking", "sensitivity_latency", "sensitivity_noise",
    "ablation_epsilon", "ablation_period", "ablation_predictor",
    "ablation_policies", "ablation_daemon",
)


def _section(result: ExperimentResult) -> str:
    parts = [f"## {result.experiment_id} — {result.description}\n"]
    if result.scalars:
        parts.append("".join(
            f"* `{k}` = {v:.4g}\n" for k, v in result.scalars.items()
        ))
    for table in result.tables:
        parts.append("```\n" + table.render() + "\n```\n")
    for note in result.notes:
        parts.append(f"> {note}\n")
    return "\n".join(parts)


def build_digest(*, fast: bool = True, seed: int = 2005,
                 experiment_ids: tuple[str, ...] | None = None,
                 jobs: int | None = None,
                 cache_dir: str | Path | None = None) -> str:
    """Run the experiments and return the digest as markdown text.

    ``jobs`` fans the experiment runs across worker processes and
    ``cache_dir`` enables the content-addressed result cache; both leave
    the markdown byte-identical to a serial, uncached build.  Each
    experiment runs exactly once — the validation section scores the same
    results the per-artifact sections render.
    """
    from .exec import ParallelRunner
    from .experiments import REGISTRY
    from .validation import EXPECTATIONS, run_validation

    ids = list(experiment_ids) if experiment_ids is not None else [
        e for e in _ORDER if e in REGISTRY
    ]
    unknown = [e for e in ids if e not in REGISTRY]
    if unknown:
        raise ExperimentError(f"unknown experiments: {unknown}")
    # Anything registered but missing from the static order still runs.
    if experiment_ids is None:
        ids += sorted(set(REGISTRY) - set(ids))

    validation_ids = sorted(
        {e.experiment_id for e in EXPECTATIONS} & set(REGISTRY)
    )
    runner = ParallelRunner(jobs=jobs, cache_dir=cache_dir)
    results = runner.run_many(
        [*ids, *[e for e in validation_ids if e not in ids]],
        seed=seed, fast=fast,
    )
    report = run_validation(fast=fast, seed=seed, results=results)
    lines = [
        "# fvsst reproduction digest",
        "",
        f"mode: {'fast' if fast else 'full'}; seed: {seed}; "
        f"experiments: {len(ids)}",
        "",
        "## Validation",
        "",
        "```",
        report.render(),
        "```",
        "",
        f"**{'ALL CHECKS PASS' if report.passed else 'FAILURES PRESENT'}**",
        "",
    ]
    for eid in ids:
        lines.append(_section(results[eid]))
    return "\n".join(lines)


def write_digest(path: str | Path, **kwargs) -> Path:
    """Build the digest and write it to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(build_digest(**kwargs))
    return path
