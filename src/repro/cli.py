"""Command-line interface: ``fvsst`` (or ``python -m repro``).

Subcommands:

* ``fvsst list`` — show the available experiments.
* ``fvsst run <experiment> [--fast] [--seed N] [--precision P]`` — run one
  experiment (or ``all``) and print its paper-style tables/series.
* ``fvsst table1`` etc. — shorthand for ``run``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis.report import ExperimentResult
from .errors import ConfigError, ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fvsst",
        description="Reproduction harness for 'Scheduling Processor Voltage "
                    "and Frequency in Server and Cluster Systems' (2005).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    show_p = sub.add_parser("show",
                            help="re-render a saved JSON result artifact")
    show_p.add_argument("path", help="path written by 'run --output'")
    show_p.add_argument("--precision", type=int, default=3)
    show_p.add_argument("--chart", action="store_true")

    digest_p = sub.add_parser("digest",
                              help="run everything and write a markdown "
                                   "digest")
    digest_p.add_argument("--output", metavar="FILE", default="digest.md")
    digest_p.add_argument("--full", action="store_true")
    digest_p.add_argument("--fast", action="store_true",
                          help="shrunken durations (the default; opposite "
                               "of --full)")
    digest_p.add_argument("--seed", type=int, default=2005)
    digest_p.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="fan experiments across N worker processes "
                               "(output is byte-identical to --jobs 1)")
    digest_p.add_argument("--cache", metavar="DIR", default=None,
                          help="content-addressed result cache directory; "
                               "unchanged experiments are recalled instead "
                               "of re-run")

    val_p = sub.add_parser("validate",
                           help="run the paper-vs-measured validation suite")
    val_p.add_argument("--full", action="store_true",
                       help="full-size experiment runs (slower)")
    val_p.add_argument("--seed", type=int, default=2005)

    run_p = sub.add_parser("run", help="run an experiment and print results")
    run_p.add_argument("experiment",
                       help="experiment id (e.g. table3, fig8) or 'all'")
    run_p.add_argument("--fast", action="store_true",
                       help="shrunken durations (same shapes)")
    run_p.add_argument("--seed", type=int, default=2005,
                       help="root random seed (default 2005)")
    run_p.add_argument("--precision", type=int, default=3,
                       help="decimal places in printed tables")
    run_p.add_argument("--chart", action="store_true",
                       help="render series results as ASCII line charts")
    run_p.add_argument("--output", metavar="DIR", default=None,
                       help="also write JSON + CSV artifacts into DIR")
    run_p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for experiments that fan "
                            "out sweep points (deterministic: same "
                            "results at any N)")
    run_p.add_argument("--telemetry", metavar="DIR", default=None,
                       help="enable telemetry collection and write the "
                            "JSONL event/span stream, a Prometheus text "
                            "snapshot, and a summary table into DIR")
    from .cluster.faults import FAULT_SCENARIOS
    # argparse treats '%' in help strings as a format spec; descriptions
    # mention loss percentages, so escape them.
    scenarios = "; ".join(f"{name}: {desc}"
                          for name, desc in FAULT_SCENARIOS.items()
                          ).replace("%", "%%")
    run_p.add_argument("--faults", metavar="SCENARIO", default=None,
                       help="inject a named fault scenario into the "
                            "cluster control plane (only cluster "
                            f"experiments support it) — {scenarios}")
    run_p.add_argument("--shards", type=int, default=None, metavar="N",
                       help="run cluster experiments through the "
                            "hierarchical control plane with N nodes per "
                            "shard (only cluster experiments support it)")
    run_p.add_argument("--slo-p99-ms", type=float, default=None,
                       metavar="MS", dest="slo_p99_ms",
                       help="p99 latency target for SLO-aware serving "
                            "experiments, in milliseconds (only serving "
                            "experiments support it)")
    run_p.add_argument("--no-fleet-kernel", action="store_true",
                       help="advance machines one at a time instead of "
                            "through the fleet-wide columnar kernel "
                            "(escape hatch; results are bit-identical)")
    return parser


def _run_one(experiment_id: str, *, seed: int, fast: bool,
             precision: int, chart: bool = False,
             output: str | None = None,
             faults: str | None = None,
             shards: int | None = None,
             slo_p99_ms: float | None = None) -> ExperimentResult:
    from .experiments import run_experiment

    kwargs = {}
    if faults is not None:
        kwargs["faults"] = faults
    if shards is not None:
        kwargs["shards"] = shards
    if slo_p99_ms is not None:
        kwargs["slo_p99_ms"] = slo_p99_ms
    try:
        # Deterministic experiments ignore the seed; passing it is harmless.
        result = run_experiment(experiment_id, seed=seed, fast=fast, **kwargs)
    except TypeError:
        if not kwargs:
            raise
        flags = " / ".join(f"--{name.replace('_', '-')}" for name in kwargs)
        raise ConfigError(
            f"experiment {experiment_id!r} does not support {flags}"
        ) from None
    print(result.render(precision=precision))
    if chart and result.series:
        from .analysis.charts import line_chart
        for series in result.series:
            numeric_x = [float(v) for v in series.x]
            print()
            print(line_chart(numeric_x, dict(series.series),
                             title=series.title or series.x_label))
    if output is not None:
        from pathlib import Path
        from .analysis.export import export_csv, save_result
        directory = Path(output)
        save_result(result, directory / f"{experiment_id}.json")
        export_csv(result, directory)
        print(f"artifacts written to {directory}/")
    print()
    return result


def _run_with_telemetry(ids: Sequence[str], args) -> int:
    """Run experiments with a live telemetry backend exporting into a dir.

    Writes ``telemetry.jsonl`` (streamed events/spans plus a final metrics
    snapshot), ``metrics.prom`` (Prometheus text format), and prints the
    summary tables.
    """
    from pathlib import Path
    from .errors import ConfigError
    from .telemetry import (JsonlSink, Telemetry, prometheus_text,
                            telemetry_report, use_telemetry)

    directory = Path(args.telemetry)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise ConfigError(
            f"--telemetry {directory}: not a usable directory ({exc})"
        ) from exc
    telemetry = Telemetry()
    with use_telemetry(telemetry):
        with JsonlSink(directory / "telemetry.jsonl", telemetry) as sink:
            for eid in ids:
                _run_one(eid, seed=args.seed, fast=args.fast,
                         precision=args.precision, chart=args.chart,
                         output=args.output,
                         faults=getattr(args, "faults", None),
                         shards=getattr(args, "shards", None),
                         slo_p99_ms=getattr(args, "slo_p99_ms", None))
            sink.write_snapshot()
        (directory / "metrics.prom").write_text(
            prometheus_text(telemetry.metrics), encoding="utf-8")
    print(telemetry_report(telemetry))
    print(f"\ntelemetry written to {directory}/ "
          f"(telemetry.jsonl, metrics.prom)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    from .experiments import REGISTRY

    try:
        if args.command == "list":
            for eid in sorted(REGISTRY):
                print(eid)
            return 0
        if args.command == "show":
            from .analysis.export import load_result
            result = load_result(args.path)
            print(result.render(precision=args.precision))
            if args.chart and result.series:
                from .analysis.charts import line_chart
                for series in result.series:
                    print()
                    print(line_chart([float(v) for v in series.x],
                                     dict(series.series),
                                     title=series.title or series.x_label))
            return 0
        if args.command == "digest":
            from .digest import write_digest
            if args.full and args.fast:
                raise ConfigError("--full and --fast are mutually exclusive")
            path = write_digest(args.output, fast=not args.full,
                                seed=args.seed, jobs=args.jobs,
                                cache_dir=args.cache)
            print(f"digest written to {path}")
            return 0
        if args.command == "validate":
            from .validation import run_validation
            report = run_validation(fast=not args.full, seed=args.seed)
            print(report.render())
            return 0 if report.passed else 1
        if args.command == "run":
            if args.no_fleet_kernel:
                from .sim.kernel import set_fleet_enabled
                set_fleet_enabled(False)
            ids = sorted(REGISTRY) if args.experiment == "all" \
                else [args.experiment]
            if args.jobs != 1:
                if args.telemetry is not None:
                    # Pool workers run with NullTelemetry, so a pooled run
                    # would record nothing.  Instrumentation wins.
                    print("note: --telemetry forces --jobs 1",
                          file=sys.stderr)
                else:
                    from .exec import configure
                    configure(args.jobs)
            if args.faults is not None:
                from .cluster.faults import FAULT_SCENARIOS, scenario_catalog
                if args.faults not in FAULT_SCENARIOS:
                    raise ConfigError(
                        f"unknown fault scenario {args.faults!r}; "
                        f"available:\n{scenario_catalog()}"
                    )
            if args.shards is not None and args.shards < 1:
                raise ConfigError("--shards must be at least 1")
            if args.slo_p99_ms is not None and args.slo_p99_ms <= 0:
                raise ConfigError("--slo-p99-ms must be positive")
            if args.telemetry is not None:
                return _run_with_telemetry(ids, args)
            for eid in ids:
                _run_one(eid, seed=args.seed, fast=args.fast,
                         precision=args.precision, chart=args.chart,
                         output=args.output, faults=args.faults,
                         shards=args.shards,
                         slo_p99_ms=args.slo_p99_ms)
            return 0
        raise AssertionError(f"unhandled command {args.command!r}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
