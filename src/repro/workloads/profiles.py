"""Models of the paper's real applications (Section 7.3).

The paper evaluated gzip and gap (SPEC CPU2000, CPU-intensive) and mcf (SPEC
CPU2000) and health (Olden), both memory-intensive.  We cannot run SPEC
binaries on real hardware, so each application is modelled as a looping
pattern of phases whose *core-to-memory cycle ratio* ``x = c0 / (m * 1 GHz)``
is placed to reproduce the published behaviour under the paper's own
performance model:

* With ``epsilon = 0.04`` and the 50 MHz ladder, a phase with ratio ``x``
  desires the lowest frequency ``f`` satisfying ``x < f*eps/(1 - eps - f)``
  (in GHz units); the boundaries are 3.8 → 1000 MHz, 0.6 → 950 MHz, 0.309 →
  900 MHz, 0.2 → 850 MHz, 0.143 → 800 MHz, 0.108 → 750 MHz, 0.084 → 700 MHz,
  0.067 → 650 MHz, ...
* gzip/gap therefore mix mostly-pure-CPU phases (time split between 1000 and
  950 MHz, Figure 8) with a small memory tail; mcf/health put most of their
  time in phases desiring 650 MHz, with shorter build/init phases higher.

The mixes below reproduce Table 3's energy column closely (e.g. mcf ≈ 0.46
vs the paper's 0.43 at 140 W) and the 75 W performance column (mcf ≈ 0.99).
The 35 W performance losses of the *memory-bound* applications come out
smaller than the paper's measurements (≈0.94 vs 0.81 for mcf): under the
constant-latency linear CPI model a phase saturated at 650 MHz cannot lose
19% at 500 MHz — the paper's own predictor would say the same, and its
Table 2/footnote-1 discussion acknowledges the model underestimates losses
below saturation.  EXPERIMENTS.md records this divergence.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WorkloadError
from ..model.latency import MemoryLatencyProfile, POWER4_LATENCIES
from ..units import check_positive
from .job import Job, LoopMode
from .phase import Phase

__all__ = [
    "PhaseSpec",
    "BenchmarkProfile",
    "gzip_profile",
    "gap_profile",
    "mcf_profile",
    "health_profile",
    "profile_by_name",
    "ALL_PROFILES",
]

#: Ideal IPC used by all application models (Power4+-class core).
_APP_ALPHA = 2.0
#: L1-hit stall cycles per instruction.
_APP_L1_STALL = 0.10
#: Unmodeled (non-memory) stall cycles per instruction.
_APP_UNMODELED = 0.05
#: Frequency-independent cycles per instruction implied by the above.
_APP_CORE_CPI = 1.0 / _APP_ALPHA + _APP_L1_STALL + _APP_UNMODELED


@dataclass(frozen=True, slots=True)
class PhaseSpec:
    """One phase of an application model.

    ``core_to_mem_ratio`` is ``x`` above (``float('inf')`` for a pure-CPU
    phase); ``duration_at_nominal_s`` is the phase's wall-clock length when
    run at the nominal 1 GHz; the l2/l3/mem shares split the memory cycles
    across hierarchy levels (they must sum to 1 when ``x`` is finite).
    """

    name: str
    core_to_mem_ratio: float
    duration_at_nominal_s: float
    l2_share: float = 0.6
    l3_share: float = 0.25
    mem_share: float = 0.15

    def __post_init__(self) -> None:
        if self.core_to_mem_ratio != float("inf"):
            check_positive(self.core_to_mem_ratio, "core_to_mem_ratio")
        check_positive(self.duration_at_nominal_s, "duration_at_nominal_s")
        if self.core_to_mem_ratio != float("inf"):
            total = self.l2_share + self.l3_share + self.mem_share
            if abs(total - 1.0) > 1e-9:
                raise WorkloadError(
                    f"phase {self.name!r}: hierarchy shares sum to {total}, not 1"
                )

    def build(self, latencies: MemoryLatencyProfile,
              nominal_freq_hz: float) -> Phase:
        """Materialise the spec as a :class:`Phase` with concrete rates."""
        if self.core_to_mem_ratio == float("inf"):
            mem_cpi_nominal = 0.0
        else:
            mem_cpi_nominal = _APP_CORE_CPI / self.core_to_mem_ratio
        # Split the nominal memory cycles across levels, then convert each
        # level's cycle share into an access rate via its latency in cycles
        # at the nominal frequency.
        n_l2 = n_l3 = n_mem = 0.0
        if mem_cpi_nominal > 0.0:
            n_l2 = self.l2_share * mem_cpi_nominal / (latencies.t_l2_s * nominal_freq_hz)
            n_l3 = self.l3_share * mem_cpi_nominal / (latencies.t_l3_s * nominal_freq_hz)
            n_mem = self.mem_share * mem_cpi_nominal / (latencies.t_mem_s * nominal_freq_hz)
        proto = Phase(
            name=self.name,
            instructions=1.0,
            alpha=_APP_ALPHA,
            l1_stall_cycles_per_instr=_APP_L1_STALL,
            n_l2_per_instr=n_l2,
            n_l3_per_instr=n_l3,
            n_mem_per_instr=n_mem,
            unmodeled_stall_cycles_per_instr=_APP_UNMODELED,
        )
        instructions = self.duration_at_nominal_s * proto.throughput(
            latencies, nominal_freq_hz
        )
        return proto.with_instructions(instructions)


@dataclass(frozen=True)
class BenchmarkProfile:
    """A named application model: a setup phase plus a repeating body."""

    name: str
    description: str
    setup: tuple[PhaseSpec, ...]
    body: tuple[PhaseSpec, ...]
    body_repeats: int = 8

    def job(self, *, latencies: MemoryLatencyProfile = POWER4_LATENCIES,
            nominal_freq_hz: float = 1.0e9, loop: bool = False,
            body_repeats: int | None = None) -> Job:
        """Materialise the profile as a runnable job.

        ONCE mode (default) runs setup then ``body_repeats`` copies of the
        body — the Table 3 configuration.  LOOP mode repeats the body
        forever for open-ended time-series experiments (Figures 8–10).
        """
        reps = self.body_repeats if body_repeats is None else body_repeats
        if reps < 1:
            raise WorkloadError("body_repeats must be >= 1")
        specs: list[PhaseSpec] = []
        if not loop:
            specs.extend(self.setup)
        specs.extend(list(self.body) * reps)
        phases = tuple(s.build(latencies, nominal_freq_hz) for s in specs)
        return Job(name=self.name, phases=phases,
                   loop=LoopMode.LOOP if loop else LoopMode.ONCE)

    def nominal_duration_s(self, *, body_repeats: int | None = None) -> float:
        """Wall-clock length of one ONCE run at the nominal frequency."""
        reps = self.body_repeats if body_repeats is None else body_repeats
        return (
            sum(s.duration_at_nominal_s for s in self.setup)
            + reps * sum(s.duration_at_nominal_s for s in self.body)
        )


def gzip_profile() -> BenchmarkProfile:
    """SPEC CPU2000 gzip: CPU-bound compression with a small memory tail.

    Time at the nominal frequency splits ≈55% pure-CPU Huffman coding
    (desires 1000 MHz), ≈38% match-finding with light L2 traffic (desires
    950 MHz) and ≈7% window flushes (desires 900 MHz) — reproducing the
    Figure 8 residency ("primarily between 1000 MHz and 950 MHz"), Table 3's
    0.94 energy ratio and ≈0.79 performance at the 75 W cap.
    """
    return BenchmarkProfile(
        name="gzip",
        description="SPEC CPU2000 gzip model (CPU-intensive)",
        setup=(PhaseSpec("gzip-load", 0.35, 0.30, l2_share=0.3,
                         l3_share=0.3, mem_share=0.4),),
        body=(
            PhaseSpec("gzip-huffman", float("inf"), 1.10),
            PhaseSpec("gzip-match", 2.0, 0.76, l2_share=0.8,
                      l3_share=0.15, mem_share=0.05),
            PhaseSpec("gzip-flush", 0.45, 0.14, l2_share=0.5,
                      l3_share=0.3, mem_share=0.2),
        ),
    )


def gap_profile() -> BenchmarkProfile:
    """SPEC CPU2000 gap: interpreter with garbage-collection sweeps.

    ≈30% pure interpreter dispatch (1000 MHz), ≈45% workspace collection
    (950 MHz), ≈15% bignum arithmetic (900 MHz) and ≈10% list scans
    (850 MHz) — giving Table 3's 0.88 energy ratio and ≈0.8 performance at
    75 W, with the Figure 9 desired-frequency wander below the 750 MHz cap.
    """
    return BenchmarkProfile(
        name="gap",
        description="SPEC CPU2000 gap model (CPU-intensive)",
        setup=(PhaseSpec("gap-read", 0.4, 0.25, l2_share=0.4,
                         l3_share=0.3, mem_share=0.3),),
        body=(
            PhaseSpec("gap-interp", float("inf"), 0.60),
            PhaseSpec("gap-collect", 1.5, 0.90, l2_share=0.7,
                      l3_share=0.2, mem_share=0.1),
            PhaseSpec("gap-bignum", 0.5, 0.30, l2_share=0.6,
                      l3_share=0.25, mem_share=0.15),
            PhaseSpec("gap-scan", 0.10, 0.20, l2_share=0.4,
                      l3_share=0.3, mem_share=0.3),
        ),
    )


def mcf_profile() -> BenchmarkProfile:
    """SPEC CPU2000 mcf: pointer-chasing network simplex.

    ≈72% of nominal time in the simplex refinement (desires 650 MHz — the
    Figure 8 "majority of execution at 650 MHz"), ≈20% in basis rebuilds
    (750 MHz) and ≈8% in CPU-bound pricing (950 MHz): Table 3's 0.43-class
    energy ratio and ≈0.99 performance at the 75 W cap.
    """
    return BenchmarkProfile(
        name="mcf",
        description="SPEC CPU2000 mcf model (memory-intensive)",
        setup=(PhaseSpec("mcf-parse", 1.5, 0.25, l2_share=0.5,
                         l3_share=0.3, mem_share=0.2),),
        body=(
            PhaseSpec("mcf-refine", 0.075, 2.10, l2_share=0.10,
                      l3_share=0.25, mem_share=0.65),
            PhaseSpec("mcf-rebuild", 0.12, 0.45, l2_share=0.15,
                      l3_share=0.30, mem_share=0.55),
            PhaseSpec("mcf-price", 1.5, 0.15, l2_share=0.7,
                      l3_share=0.2, mem_share=0.1),
        ),
    )


def health_profile() -> BenchmarkProfile:
    """Olden health: linked-list hospital simulation.

    ≈78% list traversal (650 MHz), ≈14% patient insertion (800 MHz), ≈8%
    CPU-bound setup per timestep (950 MHz).
    """
    return BenchmarkProfile(
        name="health",
        description="Olden health model (memory-intensive)",
        setup=(PhaseSpec("health-build", 0.09, 0.30, l2_share=0.1,
                         l3_share=0.2, mem_share=0.7),),
        body=(
            PhaseSpec("health-traverse", 0.07, 2.20, l2_share=0.08,
                      l3_share=0.22, mem_share=0.70),
            PhaseSpec("health-insert", 0.17, 0.30, l2_share=0.2,
                      l3_share=0.3, mem_share=0.5),
            PhaseSpec("health-setup", 2.5, 0.15, l2_share=0.6,
                      l3_share=0.25, mem_share=0.15),
        ),
    )


def _all_profiles() -> dict[str, BenchmarkProfile]:
    return {p.name: p for p in (
        gzip_profile(), gap_profile(), mcf_profile(), health_profile()
    )}


#: All four application models, keyed by name.
ALL_PROFILES: dict[str, BenchmarkProfile] = _all_profiles()


def profile_by_name(name: str) -> BenchmarkProfile:
    """Look up one of the four models; raises on unknown names."""
    try:
        return ALL_PROFILES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; available: {sorted(ALL_PROFILES)}"
        ) from None
