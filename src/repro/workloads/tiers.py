"""Tiered cluster workloads (Section 4.2).

"The tendency to assign work in a cluster by tiers where some machines run
the web server, some the processing logic and some the database accentuates
the level of diversity and stabilizes the phenomenon over time."  The tier
models here create exactly that stable diversity for the cluster
experiments: web-tier nodes are moderately CPU-bound with request bursts,
application-tier nodes nearly pure CPU, database-tier nodes memory-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WorkloadError
from ..model.latency import MemoryLatencyProfile, POWER4_LATENCIES
from .job import Job, LoopMode
from .profiles import PhaseSpec

__all__ = [
    "Tier",
    "TIER_WEB",
    "TIER_APP",
    "TIER_DB",
    "tier_job",
    "tiered_cluster_assignment",
]


@dataclass(frozen=True, slots=True)
class Tier:
    """A cluster tier: a name and its repeating phase pattern."""

    name: str
    description: str
    body: tuple[PhaseSpec, ...]

    def __post_init__(self) -> None:
        if not self.body:
            raise WorkloadError(f"tier {self.name!r} needs at least one phase")


#: Web tier: parsing/serialisation bursts (CPU) against cache lookups.
TIER_WEB = Tier(
    name="web",
    description="HTTP front end: protocol handling with session-cache misses",
    body=(
        PhaseSpec("web-parse", 3.0, 0.40, l2_share=0.7, l3_share=0.2,
                  mem_share=0.1),
        PhaseSpec("web-session", 0.35, 0.25, l2_share=0.3, l3_share=0.3,
                  mem_share=0.4),
        PhaseSpec("web-render", 1.2, 0.35, l2_share=0.6, l3_share=0.25,
                  mem_share=0.15),
    ),
)

#: Application tier: business logic, nearly pure CPU.
TIER_APP = Tier(
    name="app",
    description="processing logic: computation-dominated",
    body=(
        PhaseSpec("app-compute", float("inf"), 0.80),
        PhaseSpec("app-marshal", 1.8, 0.20, l2_share=0.7, l3_share=0.2,
                  mem_share=0.1),
    ),
)

#: Database tier: index walks and buffer-pool misses, memory-bound.
TIER_DB = Tier(
    name="db",
    description="database: pointer-heavy index traversal",
    body=(
        PhaseSpec("db-scan", 0.08, 1.20, l2_share=0.1, l3_share=0.25,
                  mem_share=0.65),
        PhaseSpec("db-join", 0.15, 0.40, l2_share=0.2, l3_share=0.3,
                  mem_share=0.5),
        PhaseSpec("db-plan", 2.0, 0.15, l2_share=0.7, l3_share=0.2,
                  mem_share=0.1),
    ),
)

_TIERS = {t.name: t for t in (TIER_WEB, TIER_APP, TIER_DB)}


def tier_job(tier: Tier | str, *, name: str | None = None,
             latencies: MemoryLatencyProfile = POWER4_LATENCIES,
             nominal_freq_hz: float = 1.0e9) -> Job:
    """A looping job executing one tier's phase pattern."""
    if isinstance(tier, str):
        try:
            tier = _TIERS[tier]
        except KeyError:
            raise WorkloadError(
                f"unknown tier {tier!r}; available: {sorted(_TIERS)}"
            ) from None
    phases = tuple(s.build(latencies, nominal_freq_hz) for s in tier.body)
    return Job(name=name or f"{tier.name}-tier", phases=phases,
               loop=LoopMode.LOOP)


def tiered_cluster_assignment(
    nodes: int,
    procs_per_node: int,
    *,
    web_nodes: int | None = None,
    app_nodes: int | None = None,
    latencies: MemoryLatencyProfile = POWER4_LATENCIES,
    nominal_freq_hz: float = 1.0e9,
) -> list[list[Job]]:
    """Assign tiers to a cluster the way sites typically do (Section 4.2).

    The first ``web_nodes`` nodes run the web tier, the next ``app_nodes``
    the application tier, and the remainder the database tier.  Defaults
    split the cluster roughly 1/3 : 1/3 : 1/3.  Every processor of a node
    runs its node's tier (one looping job per processor).

    Returns one list of jobs per node.
    """
    if nodes < 1 or procs_per_node < 1:
        raise WorkloadError("need at least one node and one processor")
    web = nodes // 3 if web_nodes is None else web_nodes
    app = nodes // 3 if app_nodes is None else app_nodes
    if web < 0 or app < 0 or web + app > nodes:
        raise WorkloadError(
            f"tier split ({web} web + {app} app) exceeds {nodes} nodes"
        )
    assignment: list[list[Job]] = []
    for n in range(nodes):
        tier = TIER_WEB if n < web else TIER_APP if n < web + app else TIER_DB
        assignment.append([
            tier_job(tier, name=f"{tier.name}-n{n}p{p}",
                     latencies=latencies, nominal_freq_hz=nominal_freq_hz)
            for p in range(procs_per_node)
        ])
    return assignment
