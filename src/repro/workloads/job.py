"""Jobs: phase sequences with execution progress.

A :class:`Job` owns an ordered list of phases and a cursor (current phase,
instructions completed within it).  The simulator core pulls work from the
job in instruction quanta; the job reports phase boundaries so the core can
re-evaluate characteristics mid-interval — the source of the
phase-transition prediction error discussed with Table 2.

Jobs either run **once** (completion time is the performance metric, as for
the SPEC-style runs of Table 3) or **loop** forever (throughput over a fixed
observation window, as for the synthetic benchmark figures).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import WorkloadError
from ..telemetry import EVENT_PHASE_TRANSITION, get_telemetry
from ..units import check_positive
from .phase import Phase

__all__ = ["LoopMode", "JobState", "Job"]


class LoopMode(enum.Enum):
    """What the job does after its last phase."""

    ONCE = "once"        #: complete after the final phase
    LOOP = "loop"        #: restart from the first phase forever


class JobState(enum.Enum):
    """Lifecycle of a job."""

    READY = "ready"
    RUNNING = "running"
    COMPLETED = "completed"


@dataclass
class Job:
    """A named sequence of phases plus execution progress.

    The instruction cursor and aggregate statistics are mutated by the
    simulator; phase definitions themselves are immutable.
    """

    name: str
    phases: Sequence[Phase]
    loop: LoopMode = LoopMode.ONCE
    #: Index of the phase the cursor is in.
    phase_index: int = field(default=0, init=False)
    #: Instructions completed inside the current phase.
    phase_progress: float = field(default=0.0, init=False)
    #: Total instructions completed over the job's lifetime.
    instructions_retired: float = field(default=0.0, init=False)
    #: Number of times the job wrapped (LOOP mode).
    iterations: int = field(default=0, init=False)
    state: JobState = field(default=JobState.READY, init=False)
    #: Simulation times of first dispatch and completion (ONCE mode).
    started_at_s: float | None = field(default=None, init=False)
    completed_at_s: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("job needs a non-empty name")
        self.phases = tuple(self.phases)
        if not self.phases:
            raise WorkloadError(f"job {self.name!r} needs at least one phase")

    # -- introspection ----------------------------------------------------------

    @property
    def total_instructions(self) -> float:
        """Instructions in one pass over all phases."""
        return sum(p.instructions for p in self.phases)

    @property
    def current_phase(self) -> Phase:
        """The phase under the cursor.

        Raises :class:`WorkloadError` on a completed job.
        """
        if self.state is JobState.COMPLETED:
            raise WorkloadError(f"job {self.name!r} already completed")
        return self.phases[self.phase_index]

    @property
    def remaining_in_phase(self) -> float:
        """Instructions left in the current phase."""
        return self.current_phase.instructions - self.phase_progress

    @property
    def done(self) -> bool:
        return self.state is JobState.COMPLETED

    def elapsed_s(self) -> float | None:
        """Wall-clock run time (ONCE mode, after completion)."""
        if self.started_at_s is None or self.completed_at_s is None:
            return None
        return self.completed_at_s - self.started_at_s

    # -- execution ---------------------------------------------------------------

    def mark_started(self, now_s: float) -> None:
        """Record the first dispatch (idempotent)."""
        if self.started_at_s is None:
            self.started_at_s = now_s
        if self.state is JobState.READY:
            self.state = JobState.RUNNING

    def retire(self, instructions: float, now_s: float) -> None:
        """Advance the cursor by ``instructions`` (must not cross a phase
        boundary — the core slices its work at boundaries so every slice has
        stationary characteristics).
        """
        check_positive(instructions, "instructions")
        if self.state is JobState.COMPLETED:
            raise WorkloadError(f"retiring instructions on completed job {self.name!r}")
        if instructions > self.remaining_in_phase * (1 + 1e-9):
            raise WorkloadError(
                f"slice of {instructions} instructions crosses a phase boundary "
                f"({self.remaining_in_phase} left in {self.current_phase.name!r})"
            )
        self.phase_progress += instructions
        self.instructions_retired += instructions
        if self.phase_progress >= self.current_phase.instructions * (1 - 1e-12):
            self._advance_phase(now_s)

    def _advance_phase(self, now_s: float) -> None:
        self.phase_progress = 0.0
        previous = self.phases[self.phase_index].name
        if self.phase_index + 1 < len(self.phases):
            self.phase_index += 1
        elif self.loop is LoopMode.LOOP:
            self.phase_index = 0
            self.iterations += 1
        else:
            self.state = JobState.COMPLETED
            self.completed_at_s = now_s
        tel = get_telemetry()
        if tel.enabled:
            tel.emit(EVENT_PHASE_TRANSITION, sim_time_s=now_s,
                     job=self.name, from_phase=previous,
                     to_phase=(None if self.done
                               else self.phases[self.phase_index].name))

    def reset(self) -> None:
        """Rewind the job to its initial state (fresh run)."""
        self.phase_index = 0
        self.phase_progress = 0.0
        self.instructions_retired = 0.0
        self.iterations = 0
        self.state = JobState.READY
        self.started_at_s = None
        self.completed_at_s = None

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def from_phases(cls, name: str, phases: Iterable[Phase], *,
                    loop: bool = False) -> "Job":
        """Convenience constructor with a boolean loop flag."""
        return cls(name=name, phases=tuple(phases),
                   loop=LoopMode.LOOP if loop else LoopMode.ONCE)
