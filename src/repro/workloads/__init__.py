"""Workload descriptions: phases, jobs, and the paper's benchmarks.

* :mod:`~repro.workloads.phase` — the phase abstraction: a stretch of
  execution with stationary per-instruction characteristics.
* :mod:`~repro.workloads.job` — jobs as phase sequences with progress.
* :mod:`~repro.workloads.synthetic` — the adjustable CPU/memory-intensity
  synthetic benchmark of [2] used throughout the paper's evaluation.
* :mod:`~repro.workloads.profiles` — models of gzip, gap, mcf (SPEC
  CPU2000) and health (Olden), calibrated to the published behaviour.
* :mod:`~repro.workloads.generator` — seeded random workload generator.
* :mod:`~repro.workloads.traces` — phase-trace record/replay.
* :mod:`~repro.workloads.tiers` — tiered cluster workloads (web/app/db).
"""

from .phase import Phase, IDLE_PHASE_NAME, idle_phase
from .job import Job, JobState, LoopMode
from .synthetic import SyntheticBenchmark, synthetic_phase, two_phase_benchmark
from .profiles import (
    BenchmarkProfile,
    gzip_profile,
    gap_profile,
    mcf_profile,
    health_profile,
    profile_by_name,
    ALL_PROFILES,
)
from .generator import WorkloadGenerator, GeneratorSpec
from .traces import PhaseTrace, RateTrace, TraceRecord, record_trace, replay_trace
from .tiers import Tier, TIER_WEB, TIER_APP, TIER_DB, tier_job, tiered_cluster_assignment
from .server import RequestSpec, ServerSource, constant_rate, diurnal_rate
from .serving import (
    DEFAULT_REQUEST_BUCKETS_S,
    FleetTrafficSource,
    LatencyDigest,
    NodeDemand,
    flash_crowd_rate,
)
from .calibrate import (admissibility_threshold, ratio_band_for_rung,
                        ratio_for_rung, signature_for_rung)

__all__ = [
    "Phase",
    "IDLE_PHASE_NAME",
    "idle_phase",
    "Job",
    "JobState",
    "LoopMode",
    "SyntheticBenchmark",
    "synthetic_phase",
    "two_phase_benchmark",
    "BenchmarkProfile",
    "gzip_profile",
    "gap_profile",
    "mcf_profile",
    "health_profile",
    "profile_by_name",
    "ALL_PROFILES",
    "WorkloadGenerator",
    "GeneratorSpec",
    "PhaseTrace",
    "TraceRecord",
    "record_trace",
    "replay_trace",
    "Tier",
    "TIER_WEB",
    "TIER_APP",
    "TIER_DB",
    "tier_job",
    "tiered_cluster_assignment",
    "RateTrace",
    "RequestSpec",
    "ServerSource",
    "constant_rate",
    "diurnal_rate",
    "DEFAULT_REQUEST_BUCKETS_S",
    "FleetTrafficSource",
    "LatencyDigest",
    "NodeDemand",
    "flash_crowd_rate",
    "admissibility_threshold",
    "ratio_band_for_rung",
    "ratio_for_rung",
    "signature_for_rung",
]
