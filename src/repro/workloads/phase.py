"""The phase abstraction (Section 4.2).

A phase is a stretch of execution with stationary per-instruction
characteristics.  Its *ground truth* CPI at frequency ``f`` follows the same
frequency-separable decomposition as the Section 4.3 model **plus** a
component the predictor cannot see:

    CPI_true(f) = 1/alpha + l1_stall + unmodeled_stall + m * f

``unmodeled_stall`` stands for branch mispredictions, TLB walks and other
non-memory stalls; the paper's Table 2 discussion names exactly this ("the
predictor currently does not account for non-memory stalls") as the bias in
its predictions, so the simulator must be able to generate it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import WorkloadError
from ..model.ipc import MemoryCounts, WorkloadSignature
from ..model.latency import MemoryLatencyProfile
from ..units import check_non_negative, check_positive

__all__ = ["Phase", "IDLE_PHASE_NAME", "idle_phase"]

#: Reserved name for the hot-idle loop phase.
IDLE_PHASE_NAME = "__idle__"


@dataclass(frozen=True, slots=True)
class Phase:
    """A stationary stretch of execution.

    Attributes
    ----------
    name:
        Label for logs and traces.
    instructions:
        Phase length in instructions (wall-clock length then depends on the
        frequency it runs at).
    alpha:
        Ideal stall-free IPC of this phase on this core.
    l1_stall_cycles_per_instr:
        L1-hit stall cycles per instruction (frequency-independent cycles).
    n_l2_per_instr, n_l3_per_instr, n_mem_per_instr:
        Accesses serviced by L2 / L3 / DRAM, per instruction.
    unmodeled_stall_cycles_per_instr:
        Frequency-independent stall cycles invisible to the performance
        counters the predictor reads (the predictor's bias source).
    """

    name: str
    instructions: float
    alpha: float
    l1_stall_cycles_per_instr: float = 0.0
    n_l2_per_instr: float = 0.0
    n_l3_per_instr: float = 0.0
    n_mem_per_instr: float = 0.0
    unmodeled_stall_cycles_per_instr: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("phase needs a non-empty name")
        check_positive(self.instructions, "instructions")
        check_positive(self.alpha, "alpha")
        check_non_negative(self.l1_stall_cycles_per_instr, "l1_stall_cycles_per_instr")
        check_non_negative(self.n_l2_per_instr, "n_l2_per_instr")
        check_non_negative(self.n_l3_per_instr, "n_l3_per_instr")
        check_non_negative(self.n_mem_per_instr, "n_mem_per_instr")
        check_non_negative(
            self.unmodeled_stall_cycles_per_instr, "unmodeled_stall_cycles_per_instr"
        )

    # -- ground truth ---------------------------------------------------------

    def true_signature(self, latencies: MemoryLatencyProfile) -> WorkloadSignature:
        """Ground-truth frequency-separable signature of this phase."""
        core_cpi = (
            1.0 / self.alpha
            + self.l1_stall_cycles_per_instr
            + self.unmodeled_stall_cycles_per_instr
        )
        mem_time = (
            self.n_l2_per_instr * latencies.t_l2_s
            + self.n_l3_per_instr * latencies.t_l3_s
            + self.n_mem_per_instr * latencies.t_mem_s
        )
        return WorkloadSignature(core_cpi=core_cpi, mem_time_per_instr_s=mem_time)

    def true_cpi(self, latencies: MemoryLatencyProfile, freq_hz: float,
                 *, latency_scale: float = 1.0) -> float:
        """Ground-truth CPI at ``freq_hz``.

        ``latency_scale`` lets the simulator jitter effective memory service
        times around the nominal profile (another predictor error source).
        """
        check_positive(latency_scale, "latency_scale")
        sig = self.true_signature(latencies)
        return sig.core_cpi + sig.mem_time_per_instr_s * latency_scale * freq_hz

    def true_ipc(self, latencies: MemoryLatencyProfile, freq_hz: float,
                 *, latency_scale: float = 1.0) -> float:
        """Ground-truth IPC at ``freq_hz``."""
        return 1.0 / self.true_cpi(latencies, freq_hz, latency_scale=latency_scale)

    def throughput(self, latencies: MemoryLatencyProfile, freq_hz: float,
                   *, latency_scale: float = 1.0) -> float:
        """Ground-truth instructions/second at ``freq_hz``."""
        check_positive(freq_hz, "freq_hz")
        return freq_hz / self.true_cpi(latencies, freq_hz, latency_scale=latency_scale)

    # -- counter generation -----------------------------------------------------

    def counts_for(self, instructions: float) -> MemoryCounts:
        """Expected counter deltas for executing ``instructions`` of this phase.

        The L1 stall counter is visible to the predictor; the unmodeled
        stall cycles are, by definition, not counted anywhere.
        """
        check_non_negative(instructions, "instructions")
        return MemoryCounts(
            instructions=instructions,
            n_l2=self.n_l2_per_instr * instructions,
            n_l3=self.n_l3_per_instr * instructions,
            n_mem=self.n_mem_per_instr * instructions,
            l1_stall_cycles=self.l1_stall_cycles_per_instr * instructions,
        )

    # -- derivation --------------------------------------------------------------

    def with_instructions(self, instructions: float) -> "Phase":
        """Same characteristics, different length."""
        return replace(self, instructions=instructions)

    def scaled_memory(self, factor: float) -> "Phase":
        """Same phase with all memory access rates scaled by ``factor``."""
        check_positive(factor, "factor")
        return replace(
            self,
            n_l2_per_instr=self.n_l2_per_instr * factor,
            n_l3_per_instr=self.n_l3_per_instr * factor,
            n_mem_per_instr=self.n_mem_per_instr * factor,
        )

    @property
    def is_idle(self) -> bool:
        return self.name == IDLE_PHASE_NAME


def idle_phase(*, ipc: float = 1.3, instructions: float = 1e9) -> Phase:
    """The Power4+ "hot" idle loop: a tight CPU-bound spin (Section 7.1).

    Its observed IPC (~1.3) makes an idle processor look like attractive
    CPU-bound work to the predictor — the pathology that motivates explicit
    idle detection in Section 5.
    """
    check_positive(ipc, "ipc")
    return Phase(
        name=IDLE_PHASE_NAME,
        instructions=instructions,
        alpha=ipc,
    )
