"""The adjustable-intensity synthetic benchmark of [2] (Section 7.3).

The original is a single-threaded program whose parameters set the ratio of
CPU-intensive to memory-intensive work and the length of each of its two
phases; its memory footprint is large enough that an L1 miss almost always
goes to DRAM.  Our model realises a phase of *CPU intensity* ``r`` (``r = 1``
pure CPU, ``r = 0`` pure pointer-chasing) as:

* DRAM accesses/instruction: ``MEM_RATE_MAX * (1 - r) + MEM_RATE_BASE``
  (even "100% CPU" code has a trickle of misses — the paper notes the
  CPU-intensive phase still has "some memory-related stalls"),
* a small constant L2 rate and an L3 rate growing with memory intensity,
* fixed ``alpha``, L1 stall and unmodeled-stall components.

With the p630 latencies, a 20%-intensity phase saturates below 500 MHz (flat
in Figure 6) while a 100% phase degrades slightly sub-linearly — the shapes
the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import WorkloadError
from ..model.latency import MemoryLatencyProfile, POWER4_LATENCIES
from ..units import check_fraction, check_positive
from .job import Job, LoopMode
from .phase import Phase

__all__ = [
    "MEM_RATE_MAX",
    "MEM_RATE_BASE",
    "synthetic_phase",
    "SyntheticBenchmark",
    "two_phase_benchmark",
]

#: DRAM accesses per instruction of a pure-memory (r=0) phase.  Chosen so a
#: 20%-intensity phase loses <2% of throughput even at 500 MHz (Figure 6).
MEM_RATE_MAX = 0.122

#: Residual DRAM rate of a pure-CPU (r=1) phase — small enough that the
#: 100%-intensity phase desires the full 1000 MHz (its core-to-memory ratio
#: is ~6, above the 3.8 boundary at epsilon=0.04), so the only cost of
#: running fvsst on it is the daemon's own overhead (Figure 4).
MEM_RATE_BASE = 0.0002

#: Constant L2 access rate (the working set's hot core).
L2_RATE = 0.002

#: L3 access rate at full memory intensity.
L3_RATE_MAX = 0.002

#: Ideal stall-free IPC of the synthetic loop on a Power4+-class core.
SYNTHETIC_ALPHA = 2.0

#: L1-hit stall cycles per instruction.
SYNTHETIC_L1_STALL = 0.10

#: Non-memory stall cycles per instruction — invisible to the predictor.
SYNTHETIC_UNMODELED_STALL = 0.05


def synthetic_phase(
    cpu_intensity: float,
    *,
    duration_s: float | None = None,
    instructions: float | None = None,
    latencies: MemoryLatencyProfile = POWER4_LATENCIES,
    nominal_freq_hz: float = 1.0e9,
    name: str | None = None,
) -> Phase:
    """Build one synthetic phase of the given CPU intensity.

    Length is given either directly in ``instructions`` or as the
    ``duration_s`` the phase takes at ``nominal_freq_hz`` (the natural way
    to script experiments: "two seconds of 75% work").
    """
    check_fraction(cpu_intensity, "cpu_intensity")
    if (duration_s is None) == (instructions is None):
        raise WorkloadError("give exactly one of duration_s / instructions")

    memory_share = 1.0 - cpu_intensity
    proto = Phase(
        name=name or f"synthetic-{cpu_intensity:.0%}",
        instructions=1.0,  # placeholder until length is known
        alpha=SYNTHETIC_ALPHA,
        l1_stall_cycles_per_instr=SYNTHETIC_L1_STALL,
        n_l2_per_instr=L2_RATE,
        n_l3_per_instr=L3_RATE_MAX * memory_share,
        n_mem_per_instr=MEM_RATE_MAX * memory_share + MEM_RATE_BASE,
        unmodeled_stall_cycles_per_instr=SYNTHETIC_UNMODELED_STALL,
    )
    if instructions is None:
        check_positive(duration_s, "duration_s")
        instructions = duration_s * proto.throughput(latencies, nominal_freq_hz)
    return proto.with_instructions(float(instructions))


@dataclass(frozen=True)
class SyntheticBenchmark:
    """The two-phase synthetic benchmark with optional init/exit phases.

    ``intensity_a``/``intensity_b`` and the matching durations parameterise
    the two main phases exactly as the original program does.  The real
    program also has initialisation (touching its large array — memory
    bound) and termination phases; Table 2's ``CPU3*`` column excludes them,
    so they are modelled explicitly and can be switched off.
    """

    intensity_a: float
    intensity_b: float
    duration_a_s: float = 2.0
    duration_b_s: float = 2.0
    include_init_exit: bool = True
    init_duration_s: float = 0.25
    exit_duration_s: float = 0.10
    latencies: MemoryLatencyProfile = field(default=POWER4_LATENCIES)
    nominal_freq_hz: float = 1.0e9

    def __post_init__(self) -> None:
        check_fraction(self.intensity_a, "intensity_a")
        check_fraction(self.intensity_b, "intensity_b")
        check_positive(self.duration_a_s, "duration_a_s")
        check_positive(self.duration_b_s, "duration_b_s")
        check_positive(self.init_duration_s, "init_duration_s")
        check_positive(self.exit_duration_s, "exit_duration_s")
        check_positive(self.nominal_freq_hz, "nominal_freq_hz")

    def main_phases(self) -> tuple[Phase, Phase]:
        """The two measured phases (A then B)."""
        common = dict(latencies=self.latencies, nominal_freq_hz=self.nominal_freq_hz)
        return (
            synthetic_phase(self.intensity_a, duration_s=self.duration_a_s,
                            name="phase-a", **common),
            synthetic_phase(self.intensity_b, duration_s=self.duration_b_s,
                            name="phase-b", **common),
        )

    def init_phase(self) -> Phase:
        """Initialisation: touching the large footprint — memory bound."""
        return synthetic_phase(0.05, duration_s=self.init_duration_s,
                               latencies=self.latencies,
                               nominal_freq_hz=self.nominal_freq_hz, name="init")

    def exit_phase(self) -> Phase:
        """Termination: reporting/teardown — CPU bound and short."""
        return synthetic_phase(0.95, duration_s=self.exit_duration_s,
                               latencies=self.latencies,
                               nominal_freq_hz=self.nominal_freq_hz, name="exit")

    def job(self, *, loop: bool = False, repeats: int = 1,
            name: str = "synthetic") -> Job:
        """Materialise the benchmark as a runnable job.

        ``repeats`` unrolls the A/B pair (ONCE mode) so a fixed-length run
        sees several phase transitions, as the original benchmark's phases
        alternate for its whole execution.
        """
        if repeats < 1:
            raise WorkloadError("repeats must be >= 1")
        a, b = self.main_phases()
        phases: list[Phase] = []
        if self.include_init_exit and not loop:
            phases.append(self.init_phase())
        phases.extend([a, b] * repeats)
        if self.include_init_exit and not loop:
            phases.append(self.exit_phase())
        return Job(name=name, phases=tuple(phases),
                   loop=LoopMode.LOOP if loop else LoopMode.ONCE)


def two_phase_benchmark(intensity_a: float, intensity_b: float,
                        **kwargs) -> SyntheticBenchmark:
    """Shorthand constructor matching the paper's usage, e.g. the Figure 6
    configuration ``two_phase_benchmark(1.0, 0.2)``."""
    return SyntheticBenchmark(intensity_a=intensity_a, intensity_b=intensity_b,
                              **kwargs)
