"""Seeded random workload generation.

Experiments beyond the paper's fixed benchmarks (cluster sweeps, property
tests, ablations) need populations of workloads with controlled diversity.
The generator draws phases whose core-to-memory ratio is log-uniform over a
configurable band — matching the observation of Section 4.2 that systems
show a spread of memory intensities across processors — and assembles them
into looping jobs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from ..units import check_positive
from .job import Job, LoopMode
from .phase import Phase
from .profiles import PhaseSpec
from ..model.latency import MemoryLatencyProfile, POWER4_LATENCIES

__all__ = ["GeneratorSpec", "WorkloadGenerator"]


@dataclass(frozen=True, slots=True)
class GeneratorSpec:
    """Distribution parameters for random workloads.

    ``ratio_low``/``ratio_high`` bound the log-uniform core-to-memory ratio
    draw (0.05 ≈ saturates near 600 MHz, 10 ≈ nearly pure CPU);
    ``phase_duration_s`` bounds the per-phase nominal duration draw.
    """

    ratio_low: float = 0.05
    ratio_high: float = 10.0
    phase_duration_low_s: float = 0.5
    phase_duration_high_s: float = 3.0
    phases_per_job_low: int = 2
    phases_per_job_high: int = 6

    def __post_init__(self) -> None:
        check_positive(self.ratio_low, "ratio_low")
        check_positive(self.ratio_high, "ratio_high")
        check_positive(self.phase_duration_low_s, "phase_duration_low_s")
        check_positive(self.phase_duration_high_s, "phase_duration_high_s")
        if self.ratio_low >= self.ratio_high:
            raise WorkloadError("ratio_low must be below ratio_high")
        if self.phase_duration_low_s > self.phase_duration_high_s:
            raise WorkloadError("phase duration bounds inverted")
        if not 1 <= self.phases_per_job_low <= self.phases_per_job_high:
            raise WorkloadError("phase count bounds invalid")


class WorkloadGenerator:
    """Deterministic (seeded) generator of random looping jobs."""

    def __init__(self, seed: int, spec: GeneratorSpec | None = None, *,
                 latencies: MemoryLatencyProfile = POWER4_LATENCIES,
                 nominal_freq_hz: float = 1.0e9) -> None:
        self._rng = np.random.default_rng(seed)
        self.spec = spec or GeneratorSpec()
        self.latencies = latencies
        self.nominal_freq_hz = nominal_freq_hz
        self._counter = 0

    def phase(self, *, name: str | None = None) -> Phase:
        """Draw one random phase."""
        s = self.spec
        ratio = float(np.exp(self._rng.uniform(
            np.log(s.ratio_low), np.log(s.ratio_high))))
        duration = float(self._rng.uniform(
            s.phase_duration_low_s, s.phase_duration_high_s))
        # Memory-heavier phases lean toward DRAM, CPU-heavier toward L2.
        dram_lean = 1.0 / (1.0 + ratio)
        mem_share = 0.1 + 0.6 * dram_lean
        l3_share = 0.25
        l2_share = 1.0 - mem_share - l3_share
        spec = PhaseSpec(
            name=name or f"rand-phase-{self._counter}",
            core_to_mem_ratio=ratio,
            duration_at_nominal_s=duration,
            l2_share=l2_share,
            l3_share=l3_share,
            mem_share=mem_share,
        )
        self._counter += 1
        return spec.build(self.latencies, self.nominal_freq_hz)

    def job(self, *, name: str | None = None, loop: bool = True) -> Job:
        """Draw one random job of several phases."""
        s = self.spec
        n = int(self._rng.integers(s.phases_per_job_low,
                                   s.phases_per_job_high + 1))
        jobname = name or f"rand-job-{self._counter}"
        phases = tuple(self.phase(name=f"{jobname}-p{i}") for i in range(n))
        return Job(name=jobname, phases=phases,
                   loop=LoopMode.LOOP if loop else LoopMode.ONCE)

    def jobs(self, count: int, *, prefix: str = "rand", loop: bool = True) -> list[Job]:
        """Draw ``count`` random jobs."""
        if count < 1:
            raise WorkloadError("count must be >= 1")
        return [self.job(name=f"{prefix}-{i}", loop=loop) for i in range(count)]
