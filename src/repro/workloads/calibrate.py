"""Calibration utilities: placing workloads on the frequency ladder.

The application models (and the worked example) are built by choosing each
phase's core-to-memory cycle ratio ``x = c0/(m·f_max)`` so that its
epsilon-constrained frequency lands on a chosen rung.  This module makes
that inversion a first-class, tested operation instead of hand arithmetic
(docs/MODEL.md §3 derives the band):

a rung ``f`` (in units of ``f_max``) is epsilon-admissible iff

    x < f·eps / (1 − eps − f)        for f < 1 − eps

so the band of ratios whose *lowest admissible* rung is ``f`` is

    threshold(next lower rung) <= x < threshold(f).
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..model.ipc import WorkloadSignature
from ..power.table import FrequencyPowerTable
from ..units import check_positive

__all__ = [
    "admissibility_threshold",
    "ratio_band_for_rung",
    "ratio_for_rung",
    "signature_for_rung",
]


def admissibility_threshold(f_rel: float, epsilon: float) -> float:
    """Largest ratio for which the rung at ``f_rel`` (relative to f_max)
    is epsilon-admissible.

    Returns ``inf`` for rungs at or above ``1 − epsilon`` (admissible for
    every finite ratio) and for ``f_rel >= 1``.
    """
    check_positive(f_rel, "f_rel")
    if not 0.0 < epsilon < 1.0:
        raise WorkloadError("epsilon must lie in (0, 1)")
    if f_rel >= 1.0 - epsilon:
        return float("inf")
    return f_rel * epsilon / (1.0 - epsilon - f_rel)


def ratio_band_for_rung(table: FrequencyPowerTable, target_freq_hz: float,
                        epsilon: float) -> tuple[float, float]:
    """The half-open band ``[low, high)`` of ratios whose epsilon rung is
    exactly ``target_freq_hz``.

    ``low`` is 0 for the bottom rung; ``high`` is ``inf`` for the top.
    Raises when the band is empty (the rung is never anyone's first
    admissible choice at this epsilon — cannot happen on strictly
    increasing ladders, but guarded for safety).
    """
    idx = table.index_of(target_freq_hz)
    f_max = table.f_max_hz
    high = admissibility_threshold(target_freq_hz / f_max, epsilon)
    if idx == 0:
        low = 0.0
    else:
        low = admissibility_threshold(table.freqs_hz[idx - 1] / f_max,
                                      epsilon)
    if not low < high:
        raise WorkloadError(
            f"no ratio makes {target_freq_hz:.3e} Hz the epsilon rung"
        )
    return low, high


def ratio_for_rung(table: FrequencyPowerTable, target_freq_hz: float,
                   epsilon: float) -> float:
    """A representative ratio (geometric midpoint of the band) whose
    epsilon-constrained frequency is ``target_freq_hz``.

    For the top rung (band unbounded above) returns twice the lower edge;
    for the bottom rung (band open at 0) returns half the upper edge.
    """
    low, high = ratio_band_for_rung(table, target_freq_hz, epsilon)
    if high == float("inf"):
        return 2.0 * low if low > 0 else 1.0
    if low == 0.0:
        return high / 2.0
    return (low * high) ** 0.5


def signature_for_rung(table: FrequencyPowerTable, target_freq_hz: float,
                       epsilon: float, *,
                       core_cpi: float = 0.65) -> WorkloadSignature:
    """A workload signature whose epsilon rung on ``table`` is exactly
    ``target_freq_hz`` — the building block of synthetic schedules."""
    check_positive(core_cpi, "core_cpi")
    ratio = ratio_for_rung(table, target_freq_hz, epsilon)
    return WorkloadSignature(
        core_cpi=core_cpi,
        mem_time_per_instr_s=core_cpi / (ratio * table.f_max_hz),
    )
