"""Fleet-scale open-loop serving traffic and mergeable latency digests.

The single-core :class:`~repro.workloads.server.ServerSource` answers "what
does one processor's queue look like"; serving millions of users needs the
fleet view.  This module scales the arrival layer up without scaling the
accounting up with it:

* :class:`FleetTrafficSource` drives one ``ServerSource`` per (node, core)
  of a whole cluster from a *shared* arrival process — constant, diurnal,
  :func:`flash_crowd_rate` ramps, or a replayed
  :class:`~repro.workloads.traces.RateTrace` — split evenly across the
  streams, each stream thinning independently with its own spawned RNG
  stream (deterministic under a root seed).  Random draws come from
  :class:`BlockedDraws` buffers: one vectorised ``Generator`` call refills
  256 draws at a time, so the per-arrival Python cost is an index bump
  rather than a Generator dispatch.
* :class:`LatencyDigest` is the fixed le-bucket histogram the fleet
  aggregates latencies into — the same bucket shape as the telemetry
  :class:`~repro.telemetry.metrics.Histogram` (upper bounds + overflow +
  sum + count), and *mergeable*: digests add bucket-wise, so p99 is
  computable per-node, per-shard, and fleet-wide without ever storing a
  per-request record.  Percentiles interpolate within the bucket
  (Prometheus ``histogram_quantile`` semantics), with the overflow bucket
  clamped to the maximum observed value.

Censoring: an open-loop overload grows queues without bound, and completed
requests under-represent the tail.  :meth:`FleetTrafficSource.fleet_digest`
reports completions only; ``censored=True`` folds in each in-flight
request's latency lower bound ``horizon - arrival`` (records of in-flight
requests are always retained, even in drop-records mode).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, NamedTuple

import numpy as np

from ..errors import WorkloadError
from ..model.latency import MemoryLatencyProfile, POWER4_LATENCIES
from ..sim.rng import spawn_seeds
from ..units import check_non_negative, check_positive
from .server import RequestSpec, ServerSource

if TYPE_CHECKING:
    from ..model.ipc import WorkloadSignature
    from ..sim.cluster import Cluster
    from ..sim.driver import Simulation

__all__ = [
    "DEFAULT_REQUEST_BUCKETS_S",
    "LatencyDigest",
    "flash_crowd_rate",
    "BlockedDraws",
    "NodeDemand",
    "FleetTrafficSource",
]

#: Request-latency le-buckets: 0.5 ms to 30 s, roughly log-spaced — wide
#: enough that an overloaded queue's tail still lands in finite buckets.
#: (The telemetry DEFAULT_LATENCY_BUCKETS_S top out at 1 s of *callback*
#: latency; request latencies need the seconds range.)
DEFAULT_REQUEST_BUCKETS_S: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class LatencyDigest:
    """A mergeable fixed-bucket latency histogram.

    Mirrors the telemetry histogram's shape — strictly increasing finite
    upper bounds plus an implicit ``+Inf`` overflow slot, an observation
    ``sum`` and ``count`` — but lives outside the metrics registry (no
    locks, no labels) and adds :meth:`merge` and :meth:`percentile`:
    digests from every core of every node add bucket-wise into shard and
    fleet digests whose percentiles are exact to bucket resolution.
    """

    __slots__ = ("uppers", "counts", "sum_s", "count", "max_s")

    def __init__(self, buckets_s: Iterable[float] = DEFAULT_REQUEST_BUCKETS_S
                 ) -> None:
        uppers = tuple(float(b) for b in buckets_s)
        if not uppers:
            raise WorkloadError("a digest needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(uppers, uppers[1:])):
            raise WorkloadError("bucket bounds must be strictly increasing")
        if not all(np.isfinite(uppers)):
            raise WorkloadError("bucket bounds must be finite")
        self.uppers = uppers
        #: Non-cumulative per-bucket counts; last slot is the +Inf overflow.
        self.counts = [0] * (len(uppers) + 1)
        self.sum_s = 0.0
        self.count = 0
        self.max_s = 0.0

    def observe(self, latency_s: float) -> None:
        value = float(latency_s)
        self.counts[bisect_left(self.uppers, value)] += 1
        self.sum_s += value
        self.count += 1
        if value > self.max_s:
            self.max_s = value

    def observe_many(self, latencies_s) -> None:
        values = np.asarray(latencies_s, dtype=float)
        if values.size == 0:
            return
        # searchsorted(side="left") == bisect_left, per value.
        slots = np.searchsorted(np.array(self.uppers), values, side="left")
        binned = np.bincount(slots, minlength=len(self.counts))
        for i, c in enumerate(binned.tolist()):
            self.counts[i] += c
        self.sum_s += float(values.sum())
        self.count += int(values.size)
        self.max_s = max(self.max_s, float(values.max()))

    def merge(self, other: "LatencyDigest") -> "LatencyDigest":
        """Add ``other`` into this digest (in place; returns self)."""
        if other.uppers != self.uppers:
            raise WorkloadError("cannot merge digests with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum_s += other.sum_s
        self.count += other.count
        self.max_s = max(self.max_s, other.max_s)
        return self

    @classmethod
    def merged(cls, digests: Iterable["LatencyDigest"]) -> "LatencyDigest":
        """A fresh digest holding the sum of ``digests``."""
        digests = list(digests)
        if not digests:
            raise WorkloadError("nothing to merge")
        out = cls(digests[0].uppers)
        for d in digests:
            out.merge(d)
        return out

    def copy(self) -> "LatencyDigest":
        out = LatencyDigest(self.uppers)
        out.merge(self)
        return out

    def mean_s(self) -> float:
        if self.count == 0:
            raise WorkloadError("empty digest")
        return self.sum_s / self.count

    def percentile(self, pct: float) -> float:
        """The ``pct``-percentile, linearly interpolated within its bucket
        (``histogram_quantile`` semantics; the overflow bucket reports the
        maximum observed value)."""
        if not 0.0 < pct <= 100.0:
            raise WorkloadError(f"percentile must be in (0, 100], got {pct}")
        if self.count == 0:
            raise WorkloadError("empty digest")
        rank = pct / 100.0 * self.count
        cumulative = 0
        for i, c in enumerate(self.counts):
            cumulative += c
            if cumulative >= rank:
                if i == len(self.uppers):
                    return self.max_s
                lower = 0.0 if i == 0 else self.uppers[i - 1]
                upper = self.uppers[i]
                frac = (rank - (cumulative - c)) / c
                return min(lower + (upper - lower) * frac, self.max_s)
        return self.max_s  # pragma: no cover — rank <= count always lands

    def fraction_below(self, latency_s: float) -> float:
        """The fraction of observations at or below ``latency_s``
        (interpolated within the straddling bucket) — the SLO-compliance
        metric for a target that need not align with a bucket edge."""
        check_non_negative(latency_s, "latency_s")
        if self.count == 0:
            raise WorkloadError("empty digest")
        below = 0.0
        lower = 0.0
        for i, upper in enumerate(self.uppers):
            if latency_s >= upper:
                below += self.counts[i]
                lower = upper
                continue
            span = upper - lower
            frac = (latency_s - lower) / span if span > 0 else 1.0
            below += self.counts[i] * frac
            return min(1.0, below / self.count)
        # Past the last finite bound: interpolate the overflow against max.
        if self.max_s > lower and latency_s < self.max_s:
            frac = (latency_s - lower) / (self.max_s - lower)
            below += self.counts[-1] * frac
        else:
            below += self.counts[-1]
        return min(1.0, below / self.count)

    def value_dict(self) -> dict:
        """The telemetry-histogram-shaped snapshot (buckets, counts, sum,
        count) plus the tracked maximum."""
        return {
            "buckets": list(self.uppers) + [float("inf")],
            "counts": list(self.counts),
            "sum": self.sum_s,
            "count": self.count,
            "max": self.max_s,
        }

    def __repr__(self) -> str:
        return (f"LatencyDigest(count={self.count}, "
                f"mean={self.sum_s / self.count if self.count else 0.0:.4g} s,"
                f" max={self.max_s:.4g} s)")


def flash_crowd_rate(base_per_s: float, peak_per_s: float, *,
                     t_start_s: float, ramp_s: float, hold_s: float,
                     decay_s: float) -> Callable[[float], float]:
    """A flash-crowd arrival curve: base load, a linear ramp to the peak
    at ``t_start_s``, a hold, and a linear decay back to base."""
    check_non_negative(base_per_s, "base_per_s")
    check_non_negative(t_start_s, "t_start_s")
    check_positive(ramp_s, "ramp_s")
    check_non_negative(hold_s, "hold_s")
    check_positive(decay_s, "decay_s")
    if peak_per_s < base_per_s:
        raise WorkloadError("peak rate below base rate")

    t_peak = t_start_s + ramp_s
    t_fall = t_peak + hold_s
    t_end = t_fall + decay_s

    def rate(t: float) -> float:
        if t <= t_start_s or t >= t_end:
            return base_per_s
        if t < t_peak:
            return base_per_s + (peak_per_s - base_per_s) \
                * (t - t_start_s) / ramp_s
        if t <= t_fall:
            return peak_per_s
        return peak_per_s - (peak_per_s - base_per_s) * (t - t_fall) / decay_s

    return rate


class BlockedDraws:
    """Buffered random draws for one arrival stream.

    A ``ServerSource`` consumes randomness one scalar at a time
    (exponential gap, uniform thin).  At fleet scale that is millions of
    ``Generator`` method dispatches; this adapter makes one vectorised
    draw per 256 and serves scalars off the buffer.  It quacks exactly
    like the subset of ``Generator`` the source uses.
    """

    __slots__ = ("_rng", "_block", "_exp", "_exp_i", "_uni", "_uni_i")

    def __init__(self, rng: np.random.Generator | int | None, *,
                 block: int = 256) -> None:
        check_positive(block, "block")
        self._rng = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))
        self._block = block
        self._exp = np.empty(0)
        self._exp_i = 0
        self._uni = np.empty(0)
        self._uni_i = 0

    def exponential(self, scale: float) -> float:
        if self._exp_i >= self._exp.size:
            self._exp = self._rng.exponential(1.0, self._block)
            self._exp_i = 0
        value = self._exp[self._exp_i]
        self._exp_i += 1
        return float(value) * scale

    def uniform(self) -> float:
        if self._uni_i >= self._uni.size:
            self._uni = self._rng.uniform(size=self._block)
            self._uni_i = 0
        value = self._uni[self._uni_i]
        self._uni_i += 1
        return float(value)


class NodeDemand(NamedTuple):
    """One node's serving demand at an instant — what the SLO-aware
    coordinator feeds the latency model."""

    #: Arrival rate per core (each core serves its own stream/queue).
    rate_per_core_per_s: float
    #: Ground-truth signature of the request computation.
    signature: "WorkloadSignature"
    #: Instructions per request.
    instructions: float


class FleetTrafficSource:
    """Open-loop request traffic across every core of a cluster.

    The fleet rate function is split evenly over the streams (one per
    (node, core)); superposed, the streams reproduce the fleet Poisson
    process exactly.  Each stream gets an independent spawned RNG and its
    own per-core :class:`LatencyDigest`; :meth:`node_digest` and
    :meth:`fleet_digest` merge upward on demand.

    By default per-request records are dropped once harvested into the
    digests (``keep_records=False``), so memory is O(in-flight), not
    O(requests served) — the property that lets a simulated fleet serve
    millions of requests.  Pass ``keep_records=True`` to retain exact
    per-request latencies (tests, calibration).

    ``spec`` is either one fleet-wide :class:`RequestSpec` or a mapping
    from ``node_id`` to the spec that node serves — a heterogeneous mix
    (e.g. a lean front-end tier next to a memory-bound backend tier).
    The mapping must cover every served node; :meth:`node_demands`
    reports each node's own signature and instruction count either way.
    """

    def __init__(self, cluster: "Cluster", *,
                 rate_per_s: Callable[[float], float],
                 max_rate_per_s: float,
                 spec: RequestSpec | Mapping[int, RequestSpec]
                     | None = None,
                 cores_per_node: int | None = None,
                 horizon_s: float | None = None,
                 keep_records: bool = False,
                 buckets_s: Iterable[float] = DEFAULT_REQUEST_BUCKETS_S,
                 latencies: MemoryLatencyProfile = POWER4_LATENCIES,
                 seed: int | None = None) -> None:
        check_positive(max_rate_per_s, "max_rate_per_s")
        self.cluster = cluster
        self.rate = rate_per_s
        self.max_rate = max_rate_per_s
        self.latencies = latencies
        if spec is None or isinstance(spec, RequestSpec):
            #: The fleet-wide request shape; ``None`` under a per-node map.
            self.spec: RequestSpec | None = spec or RequestSpec()
            spec_by_node = None
        else:
            self.spec = None
            spec_by_node = {int(nid): s for nid, s in dict(spec).items()}
            for nid, node_spec in spec_by_node.items():
                if not isinstance(node_spec, RequestSpec):
                    raise WorkloadError(
                        f"per-node request spec for node {nid} must be a "
                        f"RequestSpec, got {type(node_spec).__name__}")
        self._buckets = tuple(float(b) for b in buckets_s)
        streams: list[tuple[int, int]] = []   # (node index, core index)
        for i, node in enumerate(cluster.nodes):
            cores = node.num_procs if cores_per_node is None \
                else min(cores_per_node, node.num_procs)
            streams.extend((i, c) for c in range(cores))
        if not streams:
            raise WorkloadError("no cores to serve traffic on")
        # Resolve every served node's request shape up front — signatures
        # are computed once per node, and a mapping that misses a served
        # node fails loudly here rather than at first arrival.
        self._node_spec: dict[int, RequestSpec] = {}
        self._node_signature: dict[int, "WorkloadSignature"] = {}
        for i, _ in streams:
            node_id = cluster.nodes[i].node_id
            if node_id in self._node_spec:
                continue
            if spec_by_node is None:
                node_spec = self.spec
            else:
                try:
                    node_spec = spec_by_node[node_id]
                except KeyError:
                    raise WorkloadError(
                        f"per-node request specs given, but served node "
                        f"{node_id} has none") from None
            self._node_spec[node_id] = node_spec
            self._node_signature[node_id] = node_spec.signature(latencies)
        self.num_streams = len(streams)
        seeds = spawn_seeds(seed, self.num_streams)
        share = 1.0 / self.num_streams
        rate_fn = self.rate

        def stream_rate(t: float, _share: float = share) -> float:
            return rate_fn(t) * _share

        self.sources: list[ServerSource] = []
        self._by_node: dict[int, list[ServerSource]] = {}
        for k, (i, core) in enumerate(streams):
            node = cluster.nodes[i]
            source = ServerSource(
                node.machine, core,
                rate_per_s=stream_rate,
                max_rate_per_s=max_rate_per_s * share,
                spec=self._node_spec[node.node_id],
                horizon_s=horizon_s,
                digest=LatencyDigest(self._buckets),
                keep_records=keep_records,
                rng=BlockedDraws(seeds[k]),
            )
            self.sources.append(source)
            self._by_node.setdefault(node.node_id, []).append(source)
        self._sim: "Simulation | None" = None

    # -- lifecycle ---------------------------------------------------------------

    def attach(self, sim: "Simulation") -> None:
        if self._sim is not None:
            raise WorkloadError("fleet traffic source already attached")
        self._sim = sim
        for source in self.sources:
            source.attach(sim)

    def detach(self) -> None:
        if self._sim is None:
            raise WorkloadError("fleet traffic source is not attached")
        for source in self.sources:
            if source.attached:
                source.detach()
        self._sim = None

    # -- accounting --------------------------------------------------------------

    @property
    def issued(self) -> int:
        return sum(s.issued for s in self.sources)

    @property
    def completed(self) -> int:
        self.harvest()
        return sum(s.completed for s in self.sources)

    @property
    def in_flight(self) -> int:
        return sum(s.in_flight for s in self.sources)

    def harvest(self) -> int:
        """Sweep every stream's completions into its digest."""
        return sum(s.harvest() for s in self.sources)

    def _censor_into(self, digest: LatencyDigest,
                     sources: list[ServerSource],
                     horizon_s: float | None) -> LatencyDigest:
        for source in sources:
            digest.observe_many(source.inflight_lower_bounds_s(horizon_s))
        return digest

    def node_digest(self, node_id: int, *, censored: bool = False,
                    horizon_s: float | None = None) -> LatencyDigest:
        """One node's merged latency digest (fresh copy)."""
        try:
            sources = self._by_node[node_id]
        except KeyError:
            raise WorkloadError(f"no traffic on node {node_id}") from None
        self.harvest()
        digest = LatencyDigest.merged(s.digest for s in sources)
        if censored:
            self._censor_into(digest, sources, horizon_s)
        return digest

    def fleet_digest(self, *, censored: bool = False,
                     horizon_s: float | None = None) -> LatencyDigest:
        """The fleet-wide merged latency digest (fresh copy).

        ``censored=True`` additionally observes every in-flight request's
        latency lower bound at the horizon (defaults to the attached
        simulation's current time) — the honest tail under overload.
        """
        self.harvest()
        digest = LatencyDigest.merged(s.digest for s in self.sources)
        if censored:
            self._censor_into(digest, self.sources, horizon_s)
        return digest

    def latency_percentile_s(self, pct: float, *, censored: bool = False,
                             horizon_s: float | None = None) -> float:
        return self.fleet_digest(
            censored=censored, horizon_s=horizon_s).percentile(pct)

    # -- the coordinator-facing view ----------------------------------------------

    def node_demands(self, now_s: float) -> dict[int, NodeDemand]:
        """Per-node serving demand at ``now_s``.

        The SLO-aware coordinator turns each entry into a frequency floor
        via :func:`repro.model.latency_model.frequency_floor_hz`.  Rates
        are per core: every core serves its own arrival stream.
        """
        demands: dict[int, NodeDemand] = {}
        for node_id, sources in self._by_node.items():
            # Streams split the fleet rate evenly, so any stream's rate is
            # the per-core rate.
            demands[node_id] = NodeDemand(
                rate_per_core_per_s=sources[0].rate(now_s),
                signature=self._node_signature[node_id],
                instructions=self._node_spec[node_id].instructions,
            )
        return demands
