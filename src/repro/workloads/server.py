"""Open-loop server workloads: request arrivals, queueing, latency.

Section 3.1 contrasts fvsst with Elnozahy et al.'s demand-driven DVS for
web server farms.  To run that comparison, this module generates the
missing workload class: requests arriving over time (Poisson, with a
time-varying rate for diurnal load), each a small ONCE job enqueued on a
processor.  When the queue drains the processor idles — hot, on a Power4+
— so the idle-detection machinery and the utilization governor both get
exercised on their home turf.

Latency is measured per request (completion minus arrival), giving the
metric demand-driven schemes optimise and power-capping schemes risk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..errors import WorkloadError
from ..units import check_non_negative, check_positive
from .job import Job
from .phase import Phase

if TYPE_CHECKING:  # imported lazily to avoid a workloads <-> sim cycle
    from ..sim.driver import Simulation
    from ..sim.machine import SMPMachine

__all__ = ["RequestSpec", "RequestRecord", "ServerSource",
           "constant_rate", "diurnal_rate"]


@dataclass(frozen=True, slots=True)
class RequestSpec:
    """Shape of one request's computation.

    Defaults model a dynamic web request: ~2M instructions, moderately
    memory-bound (session/state lookups).
    """

    name: str = "request"
    instructions: float = 2e6
    alpha: float = 2.0
    l1_stall_cycles_per_instr: float = 0.1
    n_l2_per_instr: float = 0.01
    n_l3_per_instr: float = 0.001
    n_mem_per_instr: float = 0.001
    unmodeled_stall_cycles_per_instr: float = 0.05

    def __post_init__(self) -> None:
        check_positive(self.instructions, "instructions")

    def job(self, index: int) -> Job:
        phase = Phase(
            name=self.name,
            instructions=self.instructions,
            alpha=self.alpha,
            l1_stall_cycles_per_instr=self.l1_stall_cycles_per_instr,
            n_l2_per_instr=self.n_l2_per_instr,
            n_l3_per_instr=self.n_l3_per_instr,
            n_mem_per_instr=self.n_mem_per_instr,
            unmodeled_stall_cycles_per_instr=(
                self.unmodeled_stall_cycles_per_instr),
        )
        return Job(name=f"{self.name}-{index}", phases=(phase,))


@dataclass
class RequestRecord:
    """Book-keeping for one issued request."""

    job: Job
    arrival_s: float

    @property
    def completed(self) -> bool:
        return self.job.done

    @property
    def latency_s(self) -> float | None:
        if self.job.completed_at_s is None:
            return None
        return self.job.completed_at_s - self.arrival_s


def constant_rate(rate_per_s: float) -> Callable[[float], float]:
    """A constant arrival-rate function."""
    check_non_negative(rate_per_s, "rate_per_s")
    return lambda t: rate_per_s


def diurnal_rate(low_per_s: float, high_per_s: float,
                 period_s: float) -> Callable[[float], float]:
    """Sinusoidal load between ``low`` and ``high`` with the given period —
    a compressed diurnal cycle for simulation."""
    check_non_negative(low_per_s, "low_per_s")
    check_positive(period_s, "period_s")
    if high_per_s < low_per_s:
        raise WorkloadError("high rate below low rate")
    mid = 0.5 * (low_per_s + high_per_s)
    amp = 0.5 * (high_per_s - low_per_s)

    def rate(t: float) -> float:
        return mid - amp * np.cos(2 * np.pi * t / period_s)

    return rate


class ServerSource:
    """Poisson request arrivals onto one processor of a machine.

    Uses thinning against ``max_rate`` so time-varying rates stay exact:
    candidate arrivals are drawn at the peak rate and accepted with
    probability ``rate(t) / max_rate``.
    """

    def __init__(self, machine: "SMPMachine", core_index: int, *,
                 rate_per_s: Callable[[float], float],
                 max_rate_per_s: float,
                 spec: RequestSpec | None = None,
                 rng: np.random.Generator | int | None = None) -> None:
        check_positive(max_rate_per_s, "max_rate_per_s")
        self.machine = machine
        self.core_index = core_index
        self.rate = rate_per_s
        self.max_rate = max_rate_per_s
        self.spec = spec or RequestSpec()
        self._rng = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))
        self.records: list[RequestRecord] = []
        self._count = 0
        self._sim: "Simulation | None" = None

    def attach(self, sim: "Simulation") -> None:
        """Start the arrival process."""
        if self._sim is not None:
            raise WorkloadError("server source already attached")
        self._sim = sim
        self._schedule_next(sim.now_s)

    def _schedule_next(self, now_s: float) -> None:
        gap = float(self._rng.exponential(1.0 / self.max_rate))
        self._sim.at(now_s + gap, self._on_candidate, name="request-arrival")

    def _on_candidate(self, t: float) -> None:
        rate_now = self.rate(t)
        if rate_now > self.max_rate * (1 + 1e-9):
            raise WorkloadError(
                f"rate {rate_now}/s exceeds declared max {self.max_rate}/s"
            )
        if self._rng.uniform() <= rate_now / self.max_rate:
            job = self.spec.job(self._count)
            self._count += 1
            self.machine.assign(self.core_index, job)
            self.records.append(RequestRecord(job=job, arrival_s=t))
        self._schedule_next(t)

    # -- metrics -------------------------------------------------------------------

    @property
    def issued(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.completed)

    def latencies_s(self) -> np.ndarray:
        """Latencies of completed requests, in arrival order."""
        return np.array([r.latency_s for r in self.records if r.completed])

    def latency_percentile_s(self, pct: float) -> float:
        lats = self.latencies_s()
        if lats.size == 0:
            raise WorkloadError("no completed requests to score")
        return float(np.percentile(lats, pct))

    def mean_latency_s(self) -> float:
        lats = self.latencies_s()
        if lats.size == 0:
            raise WorkloadError("no completed requests to score")
        return float(lats.mean())
