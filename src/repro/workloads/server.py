"""Open-loop server workloads: request arrivals, queueing, latency.

Section 3.1 contrasts fvsst with Elnozahy et al.'s demand-driven DVS for
web server farms.  To run that comparison, this module generates the
missing workload class: requests arriving over time (Poisson, with a
time-varying rate for diurnal load), each a small ONCE job enqueued on a
processor.  When the queue drains the processor idles — hot, on a Power4+
— so the idle-detection machinery and the utilization governor both get
exercised on their home turf.

Latency is measured per request (completion minus arrival), giving the
metric demand-driven schemes optimise and power-capping schemes risk.
Completed-only percentiles are survivorship-biased during overload — the
queued requests that would dominate the tail are silently missing — so
the source also offers *censored* accounting: an in-flight request has
latency at least ``horizon - arrival``, and the censored percentile
scores those lower bounds alongside the completed latencies (see
docs/SERVING.md for the caveats).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..errors import WorkloadError
from ..units import check_non_negative, check_positive
from .job import Job
from .phase import Phase

if TYPE_CHECKING:  # imported lazily to avoid a workloads <-> sim cycle
    from ..model.ipc import WorkloadSignature
    from ..model.latency import MemoryLatencyProfile
    from ..sim.driver import Simulation
    from ..sim.events import Event
    from ..sim.machine import SMPMachine

__all__ = ["RequestSpec", "RequestRecord", "ServerSource",
           "constant_rate", "diurnal_rate"]


@dataclass(frozen=True, slots=True)
class RequestSpec:
    """Shape of one request's computation.

    Defaults model a dynamic web request: ~2M instructions, moderately
    memory-bound (session/state lookups).
    """

    name: str = "request"
    instructions: float = 2e6
    alpha: float = 2.0
    l1_stall_cycles_per_instr: float = 0.1
    n_l2_per_instr: float = 0.01
    n_l3_per_instr: float = 0.001
    n_mem_per_instr: float = 0.001
    unmodeled_stall_cycles_per_instr: float = 0.05

    def __post_init__(self) -> None:
        check_positive(self.instructions, "instructions")

    def _phase(self) -> Phase:
        return Phase(
            name=self.name,
            instructions=self.instructions,
            alpha=self.alpha,
            l1_stall_cycles_per_instr=self.l1_stall_cycles_per_instr,
            n_l2_per_instr=self.n_l2_per_instr,
            n_l3_per_instr=self.n_l3_per_instr,
            n_mem_per_instr=self.n_mem_per_instr,
            unmodeled_stall_cycles_per_instr=(
                self.unmodeled_stall_cycles_per_instr),
        )

    def job(self, index: int) -> Job:
        return Job(name=f"{self.name}-{index}", phases=(self._phase(),))

    def signature(self, latencies: "MemoryLatencyProfile"
                  ) -> "WorkloadSignature":
        """The request's ground-truth workload signature — what the
        latency predictor needs to map frequency to service time."""
        return self._phase().true_signature(latencies)


@dataclass
class RequestRecord:
    """Book-keeping for one issued request."""

    job: Job
    arrival_s: float
    #: Whether the completion has been harvested into a digest already.
    observed: bool = field(default=False, repr=False)

    @property
    def completed(self) -> bool:
        return self.job.done

    @property
    def latency_s(self) -> float | None:
        if self.job.completed_at_s is None:
            return None
        return self.job.completed_at_s - self.arrival_s


def constant_rate(rate_per_s: float) -> Callable[[float], float]:
    """A constant arrival-rate function."""
    check_non_negative(rate_per_s, "rate_per_s")
    return lambda t: rate_per_s


def diurnal_rate(low_per_s: float, high_per_s: float,
                 period_s: float) -> Callable[[float], float]:
    """Sinusoidal load between ``low`` and ``high`` with the given period —
    a compressed diurnal cycle for simulation."""
    check_non_negative(low_per_s, "low_per_s")
    check_positive(period_s, "period_s")
    if high_per_s < low_per_s:
        raise WorkloadError("high rate below low rate")
    mid = 0.5 * (low_per_s + high_per_s)
    amp = 0.5 * (high_per_s - low_per_s)

    def rate(t: float) -> float:
        return mid - amp * np.cos(2 * np.pi * t / period_s)

    return rate


class ServerSource:
    """Poisson request arrivals onto one processor of a machine.

    Uses thinning against ``max_rate`` so time-varying rates stay exact:
    candidate arrivals are drawn at the peak rate and accepted with
    probability ``rate(t) / max_rate`` — strictly-less-than against the
    ``[0, 1)`` uniform draw, so a zero-rate window (diurnal trough,
    pre-ramp flash crowd) admits exactly nothing.

    ``horizon_s`` ends the arrival chain at a fixed simulation time (no
    dangling post-run event in the queue); :meth:`detach` ends it on
    demand and makes the source re-attachable, so back-to-back experiment
    windows on one :class:`~repro.sim.driver.Simulation` don't accumulate
    live sources.

    ``digest`` (any object with an ``observe(latency_s)`` method — see
    :class:`~repro.workloads.serving.LatencyDigest`) receives each
    completed request's latency exactly once at :meth:`harvest` time;
    with ``keep_records=False`` harvested records are dropped so memory
    stays O(in-flight) at fleet scale instead of O(issued).
    """

    def __init__(self, machine: "SMPMachine", core_index: int, *,
                 rate_per_s: Callable[[float], float],
                 max_rate_per_s: float,
                 spec: RequestSpec | None = None,
                 horizon_s: float | None = None,
                 digest=None,
                 keep_records: bool = True,
                 rng: np.random.Generator | int | None = None) -> None:
        check_positive(max_rate_per_s, "max_rate_per_s")
        if horizon_s is not None:
            check_positive(horizon_s, "horizon_s")
        self.machine = machine
        self.core_index = core_index
        self.rate = rate_per_s
        self.max_rate = max_rate_per_s
        self.spec = spec or RequestSpec()
        self.horizon_s = horizon_s
        self.digest = digest
        self.keep_records = keep_records
        if rng is None or isinstance(rng, (int, np.integer)):
            self._rng = np.random.default_rng(rng)
        else:
            # A Generator, or anything quacking like one (exponential and
            # uniform) — e.g. the serving layer's blocked-draw buffers.
            self._rng = rng
        self.records: list[RequestRecord] = []
        self._count = 0
        self._harvested_completed = 0
        self._sim: "Simulation | None" = None
        self._pending: "Event | None" = None

    def attach(self, sim: "Simulation") -> None:
        """Start (or, after :meth:`detach`, restart) the arrival process."""
        if self._sim is not None:
            raise WorkloadError("server source already attached")
        self._sim = sim
        self._schedule_next(sim.now_s)

    def detach(self) -> None:
        """Stop the arrival process and release the simulation.

        Cancels the pending candidate event, so nothing of this source
        survives in the event queue; issued requests keep running to
        completion.  The source may be re-attached afterwards.
        """
        if self._sim is None:
            raise WorkloadError("server source is not attached")
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._sim = None

    @property
    def attached(self) -> bool:
        return self._sim is not None

    def _schedule_next(self, now_s: float) -> None:
        gap = float(self._rng.exponential(1.0 / self.max_rate))
        t_next = now_s + gap
        if self.horizon_s is not None and t_next >= self.horizon_s:
            self._pending = None
            return
        self._pending = self._sim.at(t_next, self._on_candidate,
                                     name="request-arrival")

    def _on_candidate(self, t: float) -> None:
        rate_now = self.rate(t)
        if rate_now > self.max_rate * (1 + 1e-9):
            raise WorkloadError(
                f"rate {rate_now}/s exceeds declared max {self.max_rate}/s"
            )
        # Strict inequality: uniform() may return exactly 0.0, which must
        # not admit a candidate when the instantaneous rate is zero.
        if self._rng.uniform() < rate_now / self.max_rate:
            job = self.spec.job(self._count)
            self._count += 1
            self.machine.assign(self.core_index, job)
            self.records.append(RequestRecord(job=job, arrival_s=t))
        self._schedule_next(t)

    # -- harvesting ------------------------------------------------------------------

    def harvest(self) -> int:
        """Fold newly completed requests into the digest; returns how many.

        Completion order is not arrival order (the dispatcher is
        round-robin), so the whole record list is swept.  With
        ``keep_records=False`` harvested records are dropped; in-flight
        records always survive (censored accounting needs them).
        """
        new = 0
        if self.keep_records:
            for record in self.records:
                if record.completed and not record.observed:
                    record.observed = True
                    new += 1
                    if self.digest is not None:
                        self.digest.observe(record.latency_s)
            return new
        kept: list[RequestRecord] = []
        for record in self.records:
            if record.completed:
                new += 1
                self._harvested_completed += 1
                if self.digest is not None:
                    self.digest.observe(record.latency_s)
            else:
                kept.append(record)
        self.records = kept
        return new

    # -- metrics -------------------------------------------------------------------

    @property
    def issued(self) -> int:
        return self._count

    @property
    def completed(self) -> int:
        return self._harvested_completed + sum(
            1 for r in self.records if r.completed)

    @property
    def in_flight(self) -> int:
        return sum(1 for r in self.records if not r.completed)

    def _require_records(self) -> None:
        if not self.keep_records:
            raise WorkloadError(
                "per-request latencies are not retained with "
                "keep_records=False; read the digest instead"
            )

    def latencies_s(self) -> np.ndarray:
        """Latencies of completed requests, in arrival order."""
        self._require_records()
        return np.array([r.latency_s for r in self.records if r.completed])

    def latency_percentile_s(self, pct: float) -> float:
        """Completed-only percentile (raw; survivorship-biased under
        overload — see :meth:`censored_latency_percentile_s`)."""
        lats = self.latencies_s()
        if lats.size == 0:
            raise WorkloadError("no completed requests to score")
        return float(np.percentile(lats, pct))

    def mean_latency_s(self) -> float:
        lats = self.latencies_s()
        if lats.size == 0:
            raise WorkloadError("no completed requests to score")
        return float(lats.mean())

    # -- censored accounting ---------------------------------------------------------

    def _horizon(self, horizon_s: float | None) -> float:
        if horizon_s is not None:
            return horizon_s
        if self._sim is not None:
            return self._sim.now_s
        raise WorkloadError(
            "censored metrics need a horizon: pass horizon_s or keep the "
            "source attached"
        )

    def inflight_lower_bounds_s(self, horizon_s: float | None = None
                                ) -> np.ndarray:
        """Latency lower bounds of in-flight requests at the horizon.

        A request still queued or running at ``horizon`` has latency at
        least ``horizon - arrival``; these are the censored observations
        the raw percentile silently drops.
        """
        horizon = self._horizon(horizon_s)
        return np.array([max(0.0, horizon - r.arrival_s)
                         for r in self.records if not r.completed])

    def censored_latencies_s(self, horizon_s: float | None = None
                             ) -> np.ndarray:
        """Completed latencies plus in-flight lower bounds."""
        self._require_records()
        return np.concatenate([
            self.latencies_s(),
            self.inflight_lower_bounds_s(horizon_s),
        ])

    def censored_latency_percentile_s(self, pct: float,
                                      horizon_s: float | None = None
                                      ) -> float:
        """Percentile over completed latencies *and* in-flight lower
        bounds.

        An underestimate of the true percentile (each censored value is
        a lower bound), but one that keeps the queued tail visible: the
        raw percentile silently drops exactly the requests that would
        dominate it under overload.  Note this is not pointwise above
        the raw value — a recently-arrived in-flight request contributes
        a *small* lower bound that can dilute an upper percentile — but
        as the horizon outruns the queue, the censored tail grows while
        the raw one stands still."""
        lats = self.censored_latencies_s(horizon_s)
        if lats.size == 0:
            raise WorkloadError("no requests to score")
        return float(np.percentile(lats, pct))

    def censored_mean_latency_s(self, horizon_s: float | None = None
                                ) -> float:
        lats = self.censored_latencies_s(horizon_s)
        if lats.size == 0:
            raise WorkloadError("no requests to score")
        return float(lats.mean())
