"""Phase-trace and arrival-trace record/replay.

The fvsst prototype "generates both scheduling and performance counter data
logs ... for monitoring and data analysis" (Section 6).  This module is the
workload-side counterpart: a :class:`PhaseTrace` serialises the phase
structure a job executed so a run can be replayed exactly (e.g. to compare
governors on identical work) or archived alongside experiment results, and
a :class:`RateTrace` serialises a measured arrival-rate curve (JSON Lines,
one ``{"t": ..., "rate_per_s": ...}`` step per line) so real traffic can
drive the open-loop serving layer.

Traces serialise to plain JSON — no pickle, so they are safe to exchange
and diff.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from ..errors import WorkloadError
from .job import Job, LoopMode
from .phase import Phase

__all__ = ["TraceRecord", "PhaseTrace", "RateTrace", "record_trace",
           "replay_trace"]

_FORMAT_VERSION = 1
_RATE_FORMAT_VERSION = 1


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One phase occurrence in a trace."""

    name: str
    instructions: float
    alpha: float
    l1_stall_cycles_per_instr: float
    n_l2_per_instr: float
    n_l3_per_instr: float
    n_mem_per_instr: float
    unmodeled_stall_cycles_per_instr: float

    @classmethod
    def from_phase(cls, phase: Phase) -> "TraceRecord":
        return cls(
            name=phase.name,
            instructions=phase.instructions,
            alpha=phase.alpha,
            l1_stall_cycles_per_instr=phase.l1_stall_cycles_per_instr,
            n_l2_per_instr=phase.n_l2_per_instr,
            n_l3_per_instr=phase.n_l3_per_instr,
            n_mem_per_instr=phase.n_mem_per_instr,
            unmodeled_stall_cycles_per_instr=phase.unmodeled_stall_cycles_per_instr,
        )

    def to_phase(self) -> Phase:
        return Phase(
            name=self.name,
            instructions=self.instructions,
            alpha=self.alpha,
            l1_stall_cycles_per_instr=self.l1_stall_cycles_per_instr,
            n_l2_per_instr=self.n_l2_per_instr,
            n_l3_per_instr=self.n_l3_per_instr,
            n_mem_per_instr=self.n_mem_per_instr,
            unmodeled_stall_cycles_per_instr=self.unmodeled_stall_cycles_per_instr,
        )


@dataclass(frozen=True)
class PhaseTrace:
    """A serialisable job description."""

    job_name: str
    loop: bool
    records: tuple[TraceRecord, ...]

    def to_dict(self) -> dict:
        return {
            "version": _FORMAT_VERSION,
            "job_name": self.job_name,
            "loop": self.loop,
            "records": [asdict(r) for r in self.records],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseTrace":
        version = data.get("version")
        if version != _FORMAT_VERSION:
            raise WorkloadError(f"unsupported trace version {version!r}")
        try:
            records = tuple(TraceRecord(**r) for r in data["records"])
            return cls(job_name=data["job_name"], loop=bool(data["loop"]),
                       records=records)
        except (KeyError, TypeError) as exc:
            raise WorkloadError(f"malformed trace: {exc}") from exc

    def dump(self, path: str | Path) -> None:
        """Write the trace as JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "PhaseTrace":
        """Read a JSON trace."""
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise WorkloadError(f"cannot load trace from {path}: {exc}") from exc
        return cls.from_dict(data)


@dataclass(frozen=True)
class RateTrace:
    """A stepwise arrival-rate curve for trace-driven serving traffic.

    ``rates_per_s[i]`` holds from ``times_s[i]`` until the next point (the
    last rate holds forever); ``times_s[0]`` must be 0 so the curve is
    total.  :meth:`rate_fn` adapts the trace to the rate-function protocol
    of :class:`~repro.workloads.server.ServerSource` and
    :class:`~repro.workloads.serving.FleetTrafficSource`, whose
    ``max_rate_per_s`` is simply :attr:`max_rate_per_s`.
    """

    times_s: tuple[float, ...]
    rates_per_s: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.times_s:
            raise WorkloadError("rate trace has no points")
        if len(self.times_s) != len(self.rates_per_s):
            raise WorkloadError("rate trace times/rates length mismatch")
        if self.times_s[0] != 0.0:
            raise WorkloadError("rate trace must start at t = 0")
        if any(t2 <= t1 for t1, t2 in zip(self.times_s, self.times_s[1:])):
            raise WorkloadError("rate trace times must strictly increase")
        if any(r < 0.0 for r in self.rates_per_s):
            raise WorkloadError("rate trace rates must be non-negative")

    @classmethod
    def from_points(cls, points: Sequence[tuple[float, float]]
                    ) -> "RateTrace":
        return cls(times_s=tuple(float(t) for t, _ in points),
                   rates_per_s=tuple(float(r) for _, r in points))

    @property
    def max_rate_per_s(self) -> float:
        return max(self.rates_per_s)

    def rate_fn(self) -> Callable[[float], float]:
        """The step function ``t -> rate``; ``t < 0`` reads the first step."""
        times = np.array(self.times_s)
        rates = self.rates_per_s

        def rate(t: float) -> float:
            i = int(np.searchsorted(times, t, side="right")) - 1
            return rates[max(i, 0)]

        return rate

    # -- JSONL serialisation ---------------------------------------------------

    def dump_jsonl(self, path: str | Path) -> None:
        """Write the trace as JSON Lines: a header line, then one
        ``{"t": ..., "rate_per_s": ...}`` per step."""
        lines = [json.dumps({"version": _RATE_FORMAT_VERSION,
                             "kind": "rate-trace"})]
        lines.extend(
            json.dumps({"t": t, "rate_per_s": r})
            for t, r in zip(self.times_s, self.rates_per_s)
        )
        Path(path).write_text("\n".join(lines) + "\n")

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "RateTrace":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise WorkloadError(
                f"cannot load rate trace from {path}: {exc}") from exc
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise WorkloadError(f"rate trace {path} is empty")
        try:
            header = json.loads(lines[0])
            records = [json.loads(line) for line in lines[1:]]
        except json.JSONDecodeError as exc:
            raise WorkloadError(
                f"cannot load rate trace from {path}: {exc}") from exc
        if (not isinstance(header, dict)
                or header.get("kind") != "rate-trace"):
            raise WorkloadError(f"{path} is not a rate trace")
        if header.get("version") != _RATE_FORMAT_VERSION:
            raise WorkloadError(
                f"unsupported rate-trace version {header.get('version')!r}")
        try:
            return cls(
                times_s=tuple(float(r["t"]) for r in records),
                rates_per_s=tuple(float(r["rate_per_s"]) for r in records),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkloadError(f"malformed rate trace: {exc}") from exc


def record_trace(job: Job) -> PhaseTrace:
    """Capture a job's phase structure as a trace."""
    return PhaseTrace(
        job_name=job.name,
        loop=job.loop is LoopMode.LOOP,
        records=tuple(TraceRecord.from_phase(p) for p in job.phases),
    )


def replay_trace(trace: PhaseTrace, *, name: str | None = None) -> Job:
    """Rebuild a fresh (unstarted) job from a trace."""
    if not trace.records:
        raise WorkloadError("trace has no phase records")
    return Job(
        name=name or trace.job_name,
        phases=tuple(r.to_phase() for r in trace.records),
        loop=LoopMode.LOOP if trace.loop else LoopMode.ONCE,
    )
