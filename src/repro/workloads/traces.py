"""Phase-trace record/replay.

The fvsst prototype "generates both scheduling and performance counter data
logs ... for monitoring and data analysis" (Section 6).  This module is the
workload-side counterpart: a :class:`PhaseTrace` serialises the phase
structure a job executed so a run can be replayed exactly (e.g. to compare
governors on identical work) or archived alongside experiment results.

Traces serialise to plain JSON-compatible dictionaries — no pickle, so they
are safe to exchange and diff.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable

from ..errors import WorkloadError
from .job import Job, LoopMode
from .phase import Phase

__all__ = ["TraceRecord", "PhaseTrace", "record_trace", "replay_trace"]

_FORMAT_VERSION = 1


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One phase occurrence in a trace."""

    name: str
    instructions: float
    alpha: float
    l1_stall_cycles_per_instr: float
    n_l2_per_instr: float
    n_l3_per_instr: float
    n_mem_per_instr: float
    unmodeled_stall_cycles_per_instr: float

    @classmethod
    def from_phase(cls, phase: Phase) -> "TraceRecord":
        return cls(
            name=phase.name,
            instructions=phase.instructions,
            alpha=phase.alpha,
            l1_stall_cycles_per_instr=phase.l1_stall_cycles_per_instr,
            n_l2_per_instr=phase.n_l2_per_instr,
            n_l3_per_instr=phase.n_l3_per_instr,
            n_mem_per_instr=phase.n_mem_per_instr,
            unmodeled_stall_cycles_per_instr=phase.unmodeled_stall_cycles_per_instr,
        )

    def to_phase(self) -> Phase:
        return Phase(
            name=self.name,
            instructions=self.instructions,
            alpha=self.alpha,
            l1_stall_cycles_per_instr=self.l1_stall_cycles_per_instr,
            n_l2_per_instr=self.n_l2_per_instr,
            n_l3_per_instr=self.n_l3_per_instr,
            n_mem_per_instr=self.n_mem_per_instr,
            unmodeled_stall_cycles_per_instr=self.unmodeled_stall_cycles_per_instr,
        )


@dataclass(frozen=True)
class PhaseTrace:
    """A serialisable job description."""

    job_name: str
    loop: bool
    records: tuple[TraceRecord, ...]

    def to_dict(self) -> dict:
        return {
            "version": _FORMAT_VERSION,
            "job_name": self.job_name,
            "loop": self.loop,
            "records": [asdict(r) for r in self.records],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseTrace":
        version = data.get("version")
        if version != _FORMAT_VERSION:
            raise WorkloadError(f"unsupported trace version {version!r}")
        try:
            records = tuple(TraceRecord(**r) for r in data["records"])
            return cls(job_name=data["job_name"], loop=bool(data["loop"]),
                       records=records)
        except (KeyError, TypeError) as exc:
            raise WorkloadError(f"malformed trace: {exc}") from exc

    def dump(self, path: str | Path) -> None:
        """Write the trace as JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "PhaseTrace":
        """Read a JSON trace."""
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise WorkloadError(f"cannot load trace from {path}: {exc}") from exc
        return cls.from_dict(data)


def record_trace(job: Job) -> PhaseTrace:
    """Capture a job's phase structure as a trace."""
    return PhaseTrace(
        job_name=job.name,
        loop=job.loop is LoopMode.LOOP,
        records=tuple(TraceRecord.from_phase(p) for p in job.phases),
    )


def replay_trace(trace: PhaseTrace, *, name: str | None = None) -> Job:
    """Rebuild a fresh (unstarted) job from a trace."""
    if not trace.records:
        raise WorkloadError("trace has no phase records")
    return Job(
        name=name or trace.job_name,
        phases=tuple(r.to_phase() for r in trace.records),
        loop=LoopMode.LOOP if trace.loop else LoopMode.ONCE,
    )
