"""The telemetry facade and the process-default backend.

Instrumented components (daemon, scheduler, coordinator, agents, the
simulation driver) hold one :class:`Telemetry` object bundling a metrics
registry, a tracer, and an event bus.  By default they resolve the
*process default*, which starts as a :class:`NullTelemetry` — a disabled
backend whose ``enabled`` flag lets every hot path skip instrumentation
with a single attribute test, keeping the disabled cost to one branch per
pass (the <1% regression bound the telemetry bench pins).

``set_telemetry(Telemetry())`` (or the CLI's ``--telemetry DIR``) turns
collection on for everything constructed afterwards; components also
accept an explicit ``telemetry=`` argument for isolated pipelines.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .events import EventBus, TelemetryEvent
from .metrics import MetricsRegistry
from .tracing import Tracer

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "telemetry_snapshot",
]


class Telemetry:
    """A live backend: metrics + tracer + events, collected for real."""

    #: Hot paths test this one attribute before doing any telemetry work.
    enabled: bool = True

    def __init__(self, *, metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 events: EventBus | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.events = events if events is not None else EventBus()
        self._flushers: list = []

    def add_flusher(self, fn) -> None:
        """Register a callback that pushes batched hot-path stats into
        the registry.  Instrumented components that accumulate per-tick
        observations locally (to keep the per-tick cost to plain attribute
        updates) register one; :meth:`flush` runs them all, and
        :meth:`snapshot` flushes first so reads are always exact.
        """
        self._flushers.append(fn)

    def flush(self) -> None:
        """Run every registered flusher (see :meth:`add_flusher`)."""
        for fn in self._flushers:
            fn()

    def emit(self, kind: str, *, sim_time_s: float | None = None,
             **attrs: object) -> TelemetryEvent | None:
        """Publish a structured event (no-op on the null backend)."""
        return self.events.publish(kind, sim_time_s=sim_time_s, **attrs)

    def snapshot(self) -> dict:
        """Metrics snapshot plus event totals — the assertable state."""
        self.flush()
        return {
            "enabled": self.enabled,
            "metrics": self.metrics.snapshot(),
            "event_counts": dict(self.events.counts),
            "spans_finished": self.tracer.finished_total,
        }

    def reset(self) -> None:
        """Clear metrics, spans, and events (keeps subscriptions)."""
        self.metrics.reset()
        self.tracer.reset()
        self.events.reset()


class NullTelemetry(Telemetry):
    """The near-zero-cost disabled backend.

    Components constructed against it still get working (empty) registry,
    tracer, and bus objects — unguarded accesses are safe — but every
    instrumentation site checks :attr:`enabled` first and skips the work.
    """

    enabled = False

    def emit(self, kind: str, *, sim_time_s: float | None = None,
             **attrs: object) -> TelemetryEvent | None:
        return None


#: The process default, resolved by components at construction time.
_default: Telemetry = NullTelemetry()


def get_telemetry() -> Telemetry:
    """The current process-default backend."""
    return _default


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Install a new process default; returns the previous one."""
    global _default
    previous = _default
    _default = telemetry
    return previous


@contextmanager
def use_telemetry(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Scoped default swap (tests, CLI runs)."""
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)


def telemetry_snapshot() -> dict:
    """Snapshot of the process-default backend (the CLI/bench accessor)."""
    return _default.snapshot()
