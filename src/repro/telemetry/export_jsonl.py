"""JSONL export: live event/span streaming plus metric round-trips.

Two shapes share one file format, one JSON object per line with a
``type`` discriminator:

* ``{"type": "event", ...}`` / ``{"type": "span", ...}`` — streamed as
  they happen by a :class:`JsonlSink` attached to a backend (the
  dashboard example tails these while the simulation runs);
* ``{"type": "metrics", "snapshot": {...}}`` — a full registry snapshot,
  written at checkpoints and parseable back into an equivalent registry
  via :func:`registry_from_snapshot` (the round-trip the exporter tests
  pin: JSONL → parse → same metrics).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import IO

from ..errors import TelemetryError
from .backend import Telemetry
from .events import TelemetryEvent
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import Span

__all__ = [
    "JsonlSink",
    "write_metrics_jsonl",
    "read_jsonl",
    "registry_from_snapshot",
]


class JsonlSink:
    """Streams a backend's events and finished spans to a JSONL file."""

    def __init__(self, path: str | Path, telemetry: Telemetry, *,
                 events: bool = True, spans: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file: IO[str] | None = self.path.open("w", encoding="utf-8")
        self._lock = threading.Lock()
        self._telemetry = telemetry
        self.lines_written = 0
        if events:
            telemetry.events.subscribe("*", self._on_event)
        if spans:
            telemetry.tracer.on_finish(self._on_span)

    def _write(self, record: dict) -> None:
        with self._lock:
            if self._file is None:
                return
            self._file.write(json.dumps(record, sort_keys=True) + "\n")
            self.lines_written += 1

    def _on_event(self, event: TelemetryEvent) -> None:
        self._write({"type": "event", **event.to_dict()})

    def _on_span(self, span: Span) -> None:
        self._write({"type": "span", **span.to_dict()})

    def write_snapshot(self) -> None:
        """Append a full metrics snapshot record."""
        self._telemetry.flush()
        self._write({"type": "metrics",
                     "snapshot": self._telemetry.metrics.snapshot()})

    def flush(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()

    def close(self) -> None:
        """Flush and detach; further events are silently dropped."""
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_metrics_jsonl(registry: MetricsRegistry, path: str | Path) -> None:
    """Write one metrics-snapshot record to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    record = {"type": "metrics", "snapshot": registry.snapshot()}
    path.write_text(json.dumps(record, sort_keys=True) + "\n",
                    encoding="utf-8")


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse every record of a JSONL telemetry file."""
    records = []
    with Path(path).open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise TelemetryError(
                    f"{path}:{lineno}: invalid JSONL record: {exc}"
                ) from exc
    return records


def registry_from_snapshot(snapshot: dict) -> MetricsRegistry:
    """Rebuild a registry whose own snapshot equals ``snapshot``."""
    registry = MetricsRegistry()
    for name, family in snapshot.items():
        kind = family.get("type")
        help_ = family.get("help", "")
        for series in family.get("series", ()):
            labels = series.get("labels") or None
            if kind == Counter.kind:
                metric = registry.counter(name, help_, labels)
                metric._restore(series["value"])
            elif kind == Gauge.kind:
                metric = registry.gauge(name, help_, labels)
                metric._restore(series["value"])
            elif kind == Histogram.kind:
                metric = registry.histogram(name, help_, labels,
                                            buckets=series["buckets"])
                metric._restore(series["counts"], series["sum"],
                                series["count"])
            else:
                raise TelemetryError(
                    f"snapshot metric {name!r}: unknown kind {kind!r}"
                )
    return registry
