"""Prometheus text-format (exposition format 0.0.4) snapshot rendering.

One function, no HTTP server: the simulation is batch-shaped, so the
snapshot is written at checkpoints (CLI ``--telemetry``, the dashboard
example) rather than scraped.  The output parses under any Prometheus
toolchain: ``# HELP``/``# TYPE`` headers, label escaping, cumulative
``_bucket{le=...}`` series with the implicit ``+Inf``, ``_sum`` and
``_count`` for histograms.
"""

from __future__ import annotations

import math

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["prometheus_text", "format_value"]


def format_value(value: int | float) -> str:
    """Prometheus sample-value formatting (integers stay integral)."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _labels_text(labels: dict[str, str],
                 extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"'
                     for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the whole registry in the Prometheus text format."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for metric in registry.collect():
        if metric.name not in seen_headers:
            seen_headers.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        labels = metric.labels
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"{metric.name}{_labels_text(labels)} "
                         f"{format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            for upper, count in zip(metric.uppers, cumulative):
                le = _labels_text(labels, {"le": format_value(upper)})
                lines.append(f"{metric.name}_bucket{le} {count}")
            inf = _labels_text(labels, {"le": "+Inf"})
            lines.append(f"{metric.name}_bucket{inf} {cumulative[-1]}")
            lines.append(f"{metric.name}_sum{_labels_text(labels)} "
                         f"{format_value(metric.sum)}")
            lines.append(f"{metric.name}_count{_labels_text(labels)} "
                         f"{metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")
