"""Span tracing with dual clocks.

A :class:`Span` measures one operation twice: in *wall* time (what the
instrumented code actually cost the host — the Section 7 "must not impose
a significant performance impact" number) and in *simulation* time (what
the modelled system experienced, e.g. the network delay a coordinator
pass pays while collecting reports).  Spans nest: a scheduler pass traced
inside a daemon pass records the daemon span as its parent, giving the
JSONL exporter a reconstructable call tree.

The current-span stack is thread-local so the multi-threaded daemon's
threads trace independently without interleaving parentage.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One traced operation."""

    name: str
    span_id: int
    parent_id: int | None
    #: Wall-clock start (``time.perf_counter`` origin, monotonic).
    start_wall_s: float
    end_wall_s: float | None = None
    #: Simulation time at which the operation logically happened.
    sim_time_s: float | None = None
    #: Simulation-time cost of the operation (0 for instantaneous
    #: callbacks; the coordinator sets its collection round-trip here).
    sim_duration_s: float = 0.0
    attrs: dict = field(default_factory=dict)

    @property
    def wall_duration_s(self) -> float | None:
        """Wall-clock cost, once finished."""
        if self.end_wall_s is None:
            return None
        return self.end_wall_s - self.start_wall_s

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def to_dict(self) -> dict:
        """Plain-data form for the JSONL exporter."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "wall_duration_s": self.wall_duration_s,
            "sim_time_s": self.sim_time_s,
            "sim_duration_s": self.sim_duration_s,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Produces nested spans and retains the most recent finished ones."""

    def __init__(self, *, max_finished: int = 4096) -> None:
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        #: Ring of finished spans (oldest evicted first).
        self.finished: deque[Span] = deque(maxlen=max_finished)
        #: Called with each span as it finishes (exporter hook).
        self._on_finish: list[Callable[[Span], None]] = []
        #: Total spans ever finished (survives ring eviction).
        self.finished_total = 0

    # -- stack ---------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- span lifecycle ------------------------------------------------------

    @contextmanager
    def span(self, name: str, *, sim_time_s: float | None = None,
             **attrs: object) -> Iterator[Span]:
        """Open a span; nests under this thread's current span."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent,
            start_wall_s=time.perf_counter(),
            sim_time_s=sim_time_s,
            attrs=dict(attrs),
        )
        stack.append(span)
        try:
            yield span
        finally:
            span.end_wall_s = time.perf_counter()
            stack.pop()
            with self._lock:
                self.finished.append(span)
                self.finished_total += 1
                hooks = list(self._on_finish)
            for hook in hooks:
                hook(span)

    def on_finish(self, callback: Callable[[Span], None]) -> None:
        """Register a callback invoked with every finished span."""
        with self._lock:
            self._on_finish.append(callback)

    # -- queries -------------------------------------------------------------

    def finished_named(self, name: str) -> list[Span]:
        """Retained finished spans with the given name, oldest first."""
        with self._lock:
            return [s for s in self.finished if s.name == name]

    def reset(self) -> None:
        with self._lock:
            self.finished.clear()
            self.finished_total = 0
