"""Metric primitives: counters, gauges, fixed-bucket histograms.

The registry is deliberately dependency-free (no ``prometheus_client``):
three metric kinds cover everything the fvsst daemon, the cluster
coordinator, and the simulation driver need to report, and the exporters
(:mod:`repro.telemetry.export_prom`, :mod:`repro.telemetry.export_jsonl`,
:mod:`repro.telemetry.summary`) render the same snapshot three ways.

Semantics follow the Prometheus data model where it matters:

* **Counters** are monotonic.  Negative increments raise; values are plain
  Python numbers, so there is *no* wraparound — a counter pushed past
  2**64 keeps exact arbitrary-precision arithmetic rather than
  overflowing (pinned by the overflow tests).
* **Gauges** go up and down.
* **Histograms** have fixed upper bounds with ``le`` (less-or-equal)
  semantics: an observation exactly on a bucket edge lands in that
  bucket, and an implicit ``+Inf`` bucket catches the rest.

Every metric carries its own lock, so the multi-threaded daemon's
collector/actuator threads may hammer a shared registry concurrently (the
concurrency tests drive this with real threads).
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Iterable, Mapping, Sequence

from ..errors import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
]

#: Wall-clock latency buckets (seconds) sized for the daemon's microsecond
#: to millisecond pass costs.
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str] | None) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared identity/lock plumbing for all metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labels: Mapping[str, str] | None = None) -> None:
        if not name or not all(c.isalnum() or c in "_:" for c in name):
            raise TelemetryError(
                f"invalid metric name {name!r} (alphanumerics, '_' and ':')"
            )
        self.name = name
        self.help = help
        self.labels: dict[str, str] = dict(_label_key(labels))
        self._lock = threading.Lock()

    @property
    def label_key(self) -> _LabelKey:
        return _label_key(self.labels)

    def value_dict(self) -> dict:
        """Snapshot of this metric's current value(s) as plain data."""
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count (events, bytes, iterations)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: Mapping[str, str] | None = None) -> None:
        super().__init__(name, help, labels)
        self._value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (>= 0); monotonicity is enforced, not assumed."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name}: negative increment {amount}"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return self._value

    def value_dict(self) -> dict:
        return {"value": self._value}

    def _restore(self, value: int | float) -> None:
        """Set the raw value (exporter round-trips only)."""
        with self._lock:
            self._value = value


class Gauge(_Metric):
    """A value that can rise and fall (planned power, active limit)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: Mapping[str, str] | None = None) -> None:
        super().__init__(name, help, labels)
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def value_dict(self) -> dict:
        return {"value": self._value}

    def _restore(self, value: float) -> None:
        with self._lock:
            self._value = float(value)


class Histogram(_Metric):
    """Fixed-bucket distribution with ``le`` (<=) bucket semantics."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labels: Mapping[str, str] | None = None, *,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S) -> None:
        super().__init__(name, help, labels)
        uppers = [float(b) for b in buckets]
        if not uppers:
            raise TelemetryError(f"histogram {name}: needs at least one bucket")
        if any(not math.isfinite(b) for b in uppers):
            raise TelemetryError(
                f"histogram {name}: buckets must be finite (+Inf is implicit)"
            )
        if sorted(uppers) != uppers or len(set(uppers)) != len(uppers):
            raise TelemetryError(
                f"histogram {name}: buckets must be strictly increasing"
            )
        self.uppers: tuple[float, ...] = tuple(uppers)
        #: Per-bucket (non-cumulative) counts; the last slot is +Inf.
        self._counts = [0] * (len(uppers) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation; edge values land in the edge's bucket."""
        idx = bisect.bisect_left(self.uppers, float(value))
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch under one lock acquisition.

        Hot paths accumulate observations in a plain list and flush them
        here, amortising the lock and call overhead across the batch.
        """
        uppers = self.uppers
        with self._lock:
            counts = self._counts
            total = 0.0
            for value in values:
                value = float(value)
                counts[bisect.bisect_left(uppers, value)] += 1
                total += value
            self._sum += total
            self._count += len(values)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> tuple[int, ...]:
        """Non-cumulative counts, one per upper bound plus +Inf."""
        return tuple(self._counts)

    def cumulative_counts(self) -> tuple[int, ...]:
        """Prometheus-style cumulative counts (last equals ``count``)."""
        out, running = [], 0
        for c in self._counts:
            running += c
            out.append(running)
        return tuple(out)

    def value_dict(self) -> dict:
        return {
            "buckets": list(self.uppers),
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._count,
        }

    def _restore(self, counts: Iterable[int], sum_: float,
                 count: int) -> None:
        counts = list(counts)
        if len(counts) != len(self.uppers) + 1:
            raise TelemetryError(
                f"histogram {self.name}: restore expects "
                f"{len(self.uppers) + 1} bucket counts, got {len(counts)}"
            )
        with self._lock:
            self._counts = counts
            self._sum = float(sum_)
            self._count = int(count)


class MetricsRegistry:
    """Get-or-create store of metrics, keyed by (name, labels).

    Re-requesting an existing metric returns the same object; requesting
    the same name with a different kind (or different histogram buckets)
    raises — the catalog is append-only and internally consistent.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, _LabelKey], _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls: type, name: str, help: str,
                       labels: Mapping[str, str] | None,
                       **kwargs) -> _Metric:
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TelemetryError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {cls.kind}"
                    )
                if (isinstance(existing, Histogram) and "buckets" in kwargs
                        and tuple(float(b) for b in kwargs["buckets"])
                        != existing.uppers):
                    raise TelemetryError(
                        f"histogram {name!r} already registered with "
                        f"different buckets"
                    )
                return existing
            # Kind collisions across label sets are also conflicts.
            for (other_name, _), other in self._metrics.items():
                if other_name == name and not isinstance(other, cls):
                    raise TelemetryError(
                        f"metric {name!r} already registered as {other.kind}"
                    )
            metric = cls(name, help, labels, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labels: Mapping[str, str] | None = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "",
              labels: Mapping[str, str] | None = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  labels: Mapping[str, str] | None = None, *,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)  # type: ignore[return-value]

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def collect(self) -> list[_Metric]:
        """All metrics, sorted by (name, labels) for deterministic export."""
        with self._lock:
            return sorted(self._metrics.values(),
                          key=lambda m: (m.name, m.label_key))

    def get(self, name: str,
            labels: Mapping[str, str] | None = None) -> _Metric | None:
        """Look up a metric without creating it."""
        return self._metrics.get((name, _label_key(labels)))

    def snapshot(self) -> dict:
        """The full registry as plain, JSON-serialisable data."""
        out: dict = {}
        for metric in self.collect():
            series = out.setdefault(metric.name, {
                "type": metric.kind,
                "help": metric.help,
                "series": [],
            })
            series["series"].append({
                "labels": dict(metric.labels),
                **metric.value_dict(),
            })
        return out

    def reset(self) -> None:
        """Drop every metric (tests and CLI reinitialisation)."""
        with self._lock:
            self._metrics.clear()
