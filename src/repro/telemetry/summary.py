"""Human-readable telemetry summaries via the shared table renderer.

The same :func:`repro.analysis.tables.render_table` that formats the
paper's tables formats the telemetry snapshot, so CLI output stays
uniform: one row per metric series (histograms show count/mean/max
bucket), plus an events table when any were published.
"""

from __future__ import annotations

from .backend import Telemetry
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["summary_table", "events_table", "telemetry_report"]


def _render_table(*args, **kwargs) -> str:
    # Imported lazily: analysis pulls in the workload layer, which is
    # itself instrumented — a top-level import would be circular.
    from ..analysis.tables import render_table
    return render_table(*args, **kwargs)


def _labels_str(labels: dict[str, str]) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def summary_table(registry: MetricsRegistry, *, precision: int = 6,
                  title: str | None = "telemetry metrics") -> str:
    """One row per metric series: value, or count/sum/mean for histograms."""
    rows = []
    for metric in registry.collect():
        if isinstance(metric, Histogram):
            rows.append([metric.name, metric.kind, _labels_str(metric.labels),
                         metric.count, metric.sum, metric.mean])
        elif isinstance(metric, (Counter, Gauge)):
            rows.append([metric.name, metric.kind, _labels_str(metric.labels),
                         metric.value, "-", "-"])
    return _render_table(
        ["metric", "type", "labels", "value/count", "sum", "mean"],
        rows, title=title, precision=precision,
    )


def events_table(telemetry: Telemetry, *,
                 title: str | None = "telemetry events") -> str:
    """Per-kind totals of every event published so far."""
    rows = [[kind, count]
            for kind, count in sorted(telemetry.events.counts.items())]
    return _render_table(["event kind", "count"], rows, title=title)


def telemetry_report(telemetry: Telemetry, *, precision: int = 6) -> str:
    """Metrics table plus (when non-empty) the events table."""
    parts = [summary_table(telemetry.metrics, precision=precision)]
    if telemetry.events.counts:
        parts.append(events_table(telemetry))
    parts.append(f"spans finished: {telemetry.tracer.finished_total}")
    return "\n\n".join(parts)
