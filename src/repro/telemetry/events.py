"""Structured telemetry events and their pub/sub bus.

Where metrics aggregate and spans time, events *narrate*: each one is a
discrete, attributed occurrence — a processor changed frequency, a budget
was breached, a power supply failed, a curtailment request arrived, a
workload crossed a phase boundary.  Subscribers (the JSONL sink, the
observability-dashboard example's tail loop, tests) register per kind or
with the ``"*"`` wildcard.

The bus keeps a bounded ring of recent events plus per-kind totals, so a
snapshot can report "3 budget breaches" long after the ring evicted them.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping

__all__ = [
    "TelemetryEvent",
    "EventBus",
    "EVENT_FREQUENCY_CHANGE",
    "EVENT_BUDGET_BREACH",
    "EVENT_PSU_FAILURE",
    "EVENT_PSU_RESTORED",
    "EVENT_CURTAILMENT",
    "EVENT_PHASE_TRANSITION",
    "EVENT_NODE_LOST",
    "EVENT_NODE_RECOVERED",
    "EVENT_SHARD_LOST",
    "EVENT_SHARD_RECOVERED",
    "EVENT_SHARD_REBALANCE",
    "EVENT_KINDS",
]

#: A processor's applied frequency changed (daemon or agent actuation).
EVENT_FREQUENCY_CHANGE = "frequency_change"
#: Step-1 demand exceeded the power limit (step 2 engaged, or infeasible).
EVENT_BUDGET_BREACH = "budget_breach"
#: A power supply failed (explicit injection or cascade).
EVENT_PSU_FAILURE = "psu_failure"
#: A failed power supply came back online.
EVENT_PSU_RESTORED = "psu_restored"
#: The global power limit changed (curtailment request, PSU response).
EVENT_CURTAILMENT = "curtailment"
#: A workload crossed a phase boundary (or looped back to phase 0).
EVENT_PHASE_TRANSITION = "phase_transition"
#: The coordinator lost a node: no report within the staleness bound
#: (crash, partition, or persistent loss); it is floor-scheduled.
EVENT_NODE_LOST = "node_lost"
#: A lost node delivered a fresh report again.
EVENT_NODE_RECOVERED = "node_recovered"
#: The fleet allocator lost a shard: no summary within the staleness
#: bound (uplink partition or persistent loss); its budget is frozen.
EVENT_SHARD_LOST = "shard_lost"
#: A lost shard delivered a fresh summary again.
EVENT_SHARD_RECOVERED = "shard_recovered"
#: The fleet allocator rebalanced delegated budgets across shards.
EVENT_SHARD_REBALANCE = "shard_rebalance"

EVENT_KINDS = (
    EVENT_FREQUENCY_CHANGE,
    EVENT_BUDGET_BREACH,
    EVENT_PSU_FAILURE,
    EVENT_PSU_RESTORED,
    EVENT_CURTAILMENT,
    EVENT_PHASE_TRANSITION,
    EVENT_NODE_LOST,
    EVENT_NODE_RECOVERED,
    EVENT_SHARD_LOST,
    EVENT_SHARD_RECOVERED,
    EVENT_SHARD_REBALANCE,
)


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured occurrence."""

    kind: str
    #: Simulation time of the occurrence (None when not tied to sim time).
    sim_time_s: float | None
    #: Wall-clock epoch seconds at publication.
    wall_time_s: float
    attrs: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "sim_time_s": self.sim_time_s,
            "wall_time_s": self.wall_time_s,
            "attrs": dict(self.attrs),
        }


class EventBus:
    """Typed-by-kind publish/subscribe with a bounded history ring."""

    WILDCARD = "*"

    def __init__(self, *, max_history: int = 4096) -> None:
        self._subscribers: dict[str, list[Callable[[TelemetryEvent], None]]] = {}
        self._lock = threading.Lock()
        self.history: deque[TelemetryEvent] = deque(maxlen=max_history)
        #: Total events ever published, per kind (survives ring eviction).
        self.counts: dict[str, int] = {}

    def subscribe(self, kind: str,
                  callback: Callable[[TelemetryEvent], None]) -> None:
        """Register for one kind, or ``"*"`` for everything."""
        with self._lock:
            self._subscribers.setdefault(kind, []).append(callback)

    def publish(self, kind: str, *, sim_time_s: float | None = None,
                **attrs: object) -> TelemetryEvent:
        """Build and deliver an event; returns it."""
        event = TelemetryEvent(kind=kind, sim_time_s=sim_time_s,
                               wall_time_s=time.time(), attrs=attrs)
        with self._lock:
            self.history.append(event)
            self.counts[kind] = self.counts.get(kind, 0) + 1
            callbacks = (list(self._subscribers.get(kind, ()))
                         + list(self._subscribers.get(self.WILDCARD, ())))
        for cb in callbacks:
            cb(event)
        return event

    # -- queries -------------------------------------------------------------

    def events_of(self, kind: str) -> list[TelemetryEvent]:
        """Retained events of one kind, oldest first."""
        with self._lock:
            return [e for e in self.history if e.kind == kind]

    def count(self, kind: str) -> int:
        """Total ever published of one kind."""
        return self.counts.get(kind, 0)

    def reset(self) -> None:
        with self._lock:
            self.history.clear()
            self.counts.clear()
