"""Telemetry: metrics, span tracing, structured events, and exporters.

The observability layer for the fvsst daemon, the cluster coordinator,
and the simulation driver (Section 7's "must not impose a significant
performance impact" made continuously checkable).  Three signal types:

* a :class:`MetricsRegistry` of counters, gauges, and fixed-bucket
  histograms (:mod:`repro.telemetry.metrics`);
* a :class:`Tracer` producing nested spans with wall-time *and*
  sim-time durations (:mod:`repro.telemetry.tracing`);
* an :class:`EventBus` of structured events — frequency changes, budget
  breaches, PSU failures, curtailments, phase transitions
  (:mod:`repro.telemetry.events`);

plus exporters: a streaming JSONL sink, a Prometheus text-format
snapshot, and a human-readable summary table.  Everything hangs off one
:class:`Telemetry` facade; the process default is a disabled
:class:`NullTelemetry` whose hot-path cost is a single attribute test.
See docs/OBSERVABILITY.md for the metric/span/event catalog.
"""

from .backend import (
    NullTelemetry,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_snapshot,
    use_telemetry,
)
from .events import (
    EVENT_BUDGET_BREACH,
    EVENT_CURTAILMENT,
    EVENT_FREQUENCY_CHANGE,
    EVENT_KINDS,
    EVENT_NODE_LOST,
    EVENT_NODE_RECOVERED,
    EVENT_PHASE_TRANSITION,
    EVENT_PSU_FAILURE,
    EVENT_PSU_RESTORED,
    EVENT_SHARD_LOST,
    EVENT_SHARD_REBALANCE,
    EVENT_SHARD_RECOVERED,
    EventBus,
    TelemetryEvent,
)
from .export_jsonl import (
    JsonlSink,
    read_jsonl,
    registry_from_snapshot,
    write_metrics_jsonl,
)
from .export_prom import prometheus_text
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .summary import events_table, summary_table, telemetry_report
from .tracing import Span, Tracer

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "telemetry_snapshot",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Tracer",
    "Span",
    "EventBus",
    "TelemetryEvent",
    "EVENT_FREQUENCY_CHANGE",
    "EVENT_BUDGET_BREACH",
    "EVENT_PSU_FAILURE",
    "EVENT_PSU_RESTORED",
    "EVENT_CURTAILMENT",
    "EVENT_PHASE_TRANSITION",
    "EVENT_NODE_LOST",
    "EVENT_NODE_RECOVERED",
    "EVENT_SHARD_LOST",
    "EVENT_SHARD_RECOVERED",
    "EVENT_SHARD_REBALANCE",
    "EVENT_KINDS",
    "JsonlSink",
    "write_metrics_jsonl",
    "read_jsonl",
    "registry_from_snapshot",
    "prometheus_text",
    "summary_table",
    "events_table",
    "telemetry_report",
]
