"""Power budgets, safety margins, and compliance monitoring (Sections 4.4, 5).

The scheduler receives a *global* processor power limit.  Section 5 notes the
limit "may contain a margin of safety that forces a downward adjustment ...
before any hardware-related, critical power limits are reached"; a
:class:`PowerBudget` therefore carries both the hard limit and the margin the
scheduler actually plans against.  A :class:`ComplianceMonitor` consumes
measured power samples and records violations — the paper's "use of power
measurement to monitor the total power consumption ensures that the system
stays below the absolute limit".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import BudgetError
from ..units import check_fraction, check_non_negative, check_positive

__all__ = ["PowerBudget", "ComplianceRecord", "ComplianceMonitor"]


@dataclass(frozen=True, slots=True)
class PowerBudget:
    """A hard power limit plus a planning margin.

    ``limit_w`` is the hard (hardware/contractual) bound; the scheduler plans
    against ``planning_limit_w = limit_w * (1 - margin)``.
    """

    limit_w: float
    margin: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.limit_w, "limit_w")
        check_fraction(self.margin, "margin")
        if self.margin >= 1.0:
            raise BudgetError("margin must be < 1")

    @property
    def planning_limit_w(self) -> float:
        """The limit the scheduler plans to stay under."""
        return self.limit_w * (1.0 - self.margin)

    def allows(self, power_w: float) -> bool:
        """True when ``power_w`` respects the *hard* limit."""
        return float(power_w) <= self.limit_w

    def plans_for(self, power_w: float) -> bool:
        """True when ``power_w`` respects the planning (margined) limit."""
        return float(power_w) <= self.planning_limit_w

    def with_limit(self, limit_w: float) -> "PowerBudget":
        """A budget with a new hard limit and the same margin — the object
        created when a power-limit-change trigger fires."""
        return PowerBudget(limit_w=limit_w, margin=self.margin)


@dataclass(frozen=True, slots=True)
class ComplianceRecord:
    """One measured sample judged against a budget."""

    time_s: float
    power_w: float
    limit_w: float

    @property
    def compliant(self) -> bool:
        return self.power_w <= self.limit_w

    @property
    def excess_w(self) -> float:
        """How far over the limit (0 when compliant)."""
        return max(0.0, self.power_w - self.limit_w)


@dataclass
class ComplianceMonitor:
    """Accumulates measured-power samples and violation statistics.

    ``settling_allowance_s`` grace-periods samples taken immediately after a
    budget change — the time the actuators legitimately need to move the
    system under a *newly lowered* limit is not a scheduler violation, and
    experiments report it separately as the *response time*.
    """

    budget: PowerBudget
    settling_allowance_s: float = 0.0
    records: list[ComplianceRecord] = field(default_factory=list)
    _budget_changed_at_s: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        check_non_negative(self.settling_allowance_s, "settling_allowance_s")

    def set_budget(self, budget: PowerBudget, now_s: float) -> None:
        """Install a new budget (a limit-change trigger) at time ``now_s``."""
        check_non_negative(now_s, "now_s")
        self.budget = budget
        self._budget_changed_at_s = now_s

    def observe(self, now_s: float, power_w: float) -> ComplianceRecord:
        """Record one sample; returns the judged record."""
        check_non_negative(now_s, "now_s")
        check_non_negative(power_w, "power_w")
        rec = ComplianceRecord(
            time_s=now_s, power_w=float(power_w), limit_w=self.budget.limit_w
        )
        self.records.append(rec)
        return rec

    # -- statistics ------------------------------------------------------------

    def _graced(self, rec: ComplianceRecord) -> bool:
        if self._budget_changed_at_s is None:
            return False
        dt = rec.time_s - self._budget_changed_at_s
        return 0.0 <= dt < self.settling_allowance_s

    @property
    def violations(self) -> list[ComplianceRecord]:
        """Non-compliant samples outside any settling grace window."""
        return [r for r in self.records if not r.compliant and not self._graced(r)]

    @property
    def violation_fraction(self) -> float:
        """Fraction of (non-graced) samples that violated the hard limit."""
        judged = [r for r in self.records if not self._graced(r)]
        if not judged:
            return 0.0
        return sum(1 for r in judged if not r.compliant) / len(judged)

    def response_time_s(self) -> float | None:
        """Time from the last budget change to the first compliant sample.

        ``None`` when no budget change was recorded or compliance was never
        regained.  This is the quantity that must beat the PSU cascade
        deadline ``DeltaT`` in the motivating example.
        """
        if self._budget_changed_at_s is None:
            return None
        t0 = self._budget_changed_at_s
        for rec in self.records:
            if rec.time_s >= t0 and rec.compliant:
                return rec.time_s - t0
        return None

    def max_excess_w(self) -> float:
        """Largest observed excursion above the hard limit."""
        if not self.records:
            return 0.0
        return max(r.excess_w for r in self.records)
