"""Minimum-stable-voltage curves ``V(f)`` (Section 4.4).

"At each available frequency, the minimum voltage necessary to reliably
drive that frequency is selected."  Two realisations:

* :class:`LinearVFCurve` — the standard first-order DVFS assumption that
  minimum voltage grows affinely with frequency between two anchor points.
* :class:`TableVFCurve` — explicit per-frequency voltage table, as shipped
  by firmware; the paper notes the table may differ per processor under
  process variation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..errors import PowerModelError
from ..units import check_positive

__all__ = ["VoltageFrequencyCurve", "LinearVFCurve", "TableVFCurve"]


class VoltageFrequencyCurve(ABC):
    """Abstract minimum-stable-voltage curve."""

    @abstractmethod
    def min_voltage(self, freq_hz: float) -> float:
        """Minimum voltage (V) that reliably drives ``freq_hz``."""

    def min_voltage_array(self, freqs_hz) -> np.ndarray:
        """Vectorised :meth:`min_voltage` (subclasses may override)."""
        return np.array([self.min_voltage(f) for f in np.asarray(freqs_hz, dtype=float)])


@dataclass(frozen=True, slots=True)
class LinearVFCurve(VoltageFrequencyCurve):
    """Affine ``V(f)`` between ``(f_min, v_min)`` and ``(f_max, v_max)``.

    Frequencies outside the anchor span are clamped, reflecting real parts:
    below some floor the voltage cannot be lowered further, and the curve is
    not defined above the maximum rated frequency.
    """

    f_min_hz: float
    v_min: float
    f_max_hz: float
    v_max: float

    def __post_init__(self) -> None:
        check_positive(self.f_min_hz, "f_min_hz")
        check_positive(self.f_max_hz, "f_max_hz")
        check_positive(self.v_min, "v_min")
        check_positive(self.v_max, "v_max")
        if self.f_min_hz >= self.f_max_hz:
            raise PowerModelError("f_min must be below f_max")
        if self.v_min > self.v_max:
            raise PowerModelError("v_min must not exceed v_max")

    def min_voltage(self, freq_hz: float) -> float:
        check_positive(freq_hz, "freq_hz")
        if freq_hz > self.f_max_hz * (1 + 1e-9):
            raise PowerModelError(
                f"frequency {freq_hz:.3e} Hz exceeds rated maximum {self.f_max_hz:.3e} Hz"
            )
        f = min(max(freq_hz, self.f_min_hz), self.f_max_hz)
        span = self.f_max_hz - self.f_min_hz
        t = (f - self.f_min_hz) / span
        return self.v_min + t * (self.v_max - self.v_min)

    def min_voltage_array(self, freqs_hz) -> np.ndarray:
        f = np.asarray(freqs_hz, dtype=float)
        if f.size and np.any(f > self.f_max_hz * (1 + 1e-9)):
            raise PowerModelError("a frequency exceeds the rated maximum")
        f = np.clip(f, self.f_min_hz, self.f_max_hz)
        t = (f - self.f_min_hz) / (self.f_max_hz - self.f_min_hz)
        return self.v_min + t * (self.v_max - self.v_min)


@dataclass(frozen=True)
class TableVFCurve(VoltageFrequencyCurve):
    """Explicit firmware-style (frequency -> min voltage) table.

    Exact frequencies look up directly; intermediate frequencies use the
    voltage of the next table point *above* (a lower voltage might not be
    stable), which is the conservative firmware behaviour.
    """

    points: tuple[tuple[float, float], ...] = field()

    def __init__(self, points) -> None:
        rows = sorted((float(f), float(v)) for f, v in dict(points).items()) \
            if isinstance(points, dict) else sorted((float(f), float(v)) for f, v in points)
        if len(rows) < 1:
            raise PowerModelError("voltage table needs at least one point")
        freqs = [f for f, _ in rows]
        volts = [v for _, v in rows]
        if any(f <= 0 for f in freqs) or any(v <= 0 for v in volts):
            raise PowerModelError("table frequencies and voltages must be positive")
        if len(set(freqs)) != len(freqs):
            raise PowerModelError("duplicate frequencies in voltage table")
        if any(b < a for a, b in zip(volts, volts[1:])):
            raise PowerModelError("min voltage must be non-decreasing in frequency")
        object.__setattr__(self, "points", tuple(rows))

    def min_voltage(self, freq_hz: float) -> float:
        check_positive(freq_hz, "freq_hz")
        for f, v in self.points:
            if freq_hz <= f * (1 + 1e-9):
                return v
        raise PowerModelError(
            f"frequency {freq_hz:.3e} Hz above the top of the voltage table"
        )
