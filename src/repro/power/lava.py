"""A stand-in for the Lava circuit-level power estimator (Devgan, [16]).

The paper generated Table 1 with Lava, a proprietary circuit tool that
determines "the shape of the power versus voltage and frequency curves for a
particular technology".  We cannot run Lava, so this module goes the other
way: it fits the Section 4.4 analytic model

    P(f) = C * V(f)^2 * f + B * V(f)^2,    V(f) = v0 + v1 * f   (clamped)

to an operating-point table by bounded least squares, recovering a physically
constrained (``C > 0``, ``B >= 0``, voltage rising with frequency) analytic
curve that reproduces the table closely and can be queried off-grid.  The
substitution is documented in DESIGN.md: the scheduler consumes only the
table, so any generator that reproduces Table 1's points preserves behaviour;
the analytic fit additionally supports the continuous-frequency extension and
ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from .. import constants
from ..errors import PowerModelError
from .cmos import CmosPowerModel
from .table import FrequencyPowerTable
from .vf_curve import LinearVFCurve

__all__ = ["LavaFit", "fit_lava_model"]


@dataclass(frozen=True, slots=True)
class LavaFit:
    """Result of fitting the analytic model to an operating-point table."""

    cmos: CmosPowerModel
    vf_curve: LinearVFCurve
    #: Maximum relative error of the fit over the table points.
    max_rel_error: float
    #: Root-mean-square relative error over the table points.
    rms_rel_error: float

    def power_w(self, freq_hz: float) -> float:
        """Analytic max power at ``freq_hz`` using the fitted V(f)."""
        return self.cmos.power_w(freq_hz, self.vf_curve.min_voltage(freq_hz))

    def power_array_w(self, freqs_hz) -> np.ndarray:
        """Vectorised analytic power curve."""
        f = np.asarray(freqs_hz, dtype=float)
        v = self.vf_curve.min_voltage_array(f)
        return self.cmos.power_array_w(f, v)

    def regenerate_table(self, freqs_hz) -> FrequencyPowerTable:
        """Build a new operating-point table from the analytic curve —
        how our "Lava" produces Table 1-style artifacts for other ladders."""
        f = np.asarray(sorted(freqs_hz), dtype=float)
        p = self.power_array_w(f)
        return FrequencyPowerTable(list(zip(f.tolist(), p.tolist())))


def fit_lava_model(
    table: FrequencyPowerTable,
    *,
    v_max: float = constants.NOMINAL_VDD,
    v_floor_fraction: float = 0.45,
) -> LavaFit:
    """Fit ``C``, ``B`` and a linear ``V(f)`` to an operating-point table.

    Parameters
    ----------
    table:
        The target operating points (e.g. :data:`~repro.power.table.POWER4_TABLE`).
    v_max:
        Voltage at the table's top frequency — pinned to the platform's
        nominal 1.3 V so the fit has a physical anchor.
    v_floor_fraction:
        Lower bound on ``V(f_min)`` as a fraction of ``v_max``, keeping the
        optimiser away from unphysical near-zero voltages.

    Returns
    -------
    LavaFit
        Fitted model with fit-quality diagnostics.
    """
    if not 0.0 < v_floor_fraction < 1.0:
        raise PowerModelError("v_floor_fraction must lie in (0, 1)")

    f = table.freqs_array()
    p = table.powers_array()
    f_min, f_max = table.f_min_hz, table.f_max_hz

    def unpack(x: np.ndarray) -> tuple[float, float, float]:
        c, b, v_min = x
        return float(c), float(b), float(v_min)

    def model(x: np.ndarray) -> np.ndarray:
        c, b, v_min = unpack(x)
        t = (f - f_min) / (f_max - f_min)
        v = v_min + t * (v_max - v_min)
        v2 = v * v
        return c * v2 * f + b * v2

    def residuals(x: np.ndarray) -> np.ndarray:
        # Relative residuals weight the small low-frequency powers fairly.
        return (model(x) - p) / p

    # Initial guess: all power active at nominal voltage.
    c0 = table.max_power_w / (v_max * v_max * f_max)
    x0 = np.array([c0, 1e-3, 0.7 * v_max])
    lower = np.array([1e-15, 0.0, v_floor_fraction * v_max])
    upper = np.array([np.inf, np.inf, v_max])
    result = least_squares(residuals, x0, bounds=(lower, upper))
    if not result.success:
        raise PowerModelError(f"Lava fit did not converge: {result.message}")

    c, b, v_min = unpack(result.x)
    rel = np.abs(residuals(result.x))
    fit = LavaFit(
        cmos=CmosPowerModel(capacitance_f=c, leakage_s=b),
        vf_curve=LinearVFCurve(
            f_min_hz=f_min, v_min=v_min, f_max_hz=f_max, v_max=v_max
        ),
        max_rel_error=float(rel.max()),
        rms_rel_error=float(np.sqrt(np.mean(rel * rel))),
    )
    return fit
