"""A lumped thermal model and thermal-emergency triggering.

Section 2 lists "site air conditioning failures" alongside PSU failures as
events that force a rapid reduction in allowed power.  This module supplies
the missing physics: a first-order RC thermal model per processor

    C_th * dT/dt = P(t) - (T - T_ambient) / R_th

integrated in closed form over piecewise-constant power, plus a
:class:`ThermalMonitor` that converts temperature against a limit into the
power budget fvsst must honour — when a core approaches its junction limit,
the sustainable power is

    P_max_sustainable = (T_limit - T_ambient) / R_th

so an ambient rise (failed CRAC unit) translates directly into a lower
processor power budget, exactly the trigger shape the scheduler consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import SimulationError
from ..units import check_non_negative, check_positive

__all__ = ["ThermalParams", "ThermalNode", "ThermalMonitor"]


@dataclass(frozen=True, slots=True)
class ThermalParams:
    """First-order thermal parameters of one processor + heatsink.

    Defaults give a ~0.47 K/W, ~40 s time-constant package: a 140 W core
    at 25 °C ambient settles near 91 °C, close to its limit — matching how
    tightly 2005-era servers ran their cooling.
    """

    #: Junction-to-ambient thermal resistance, kelvin per watt.
    r_th_k_per_w: float = 0.47
    #: Thermal capacitance, joules per kelvin (tau = RC ~ 12 s).
    c_th_j_per_k: float = 25.0
    #: Maximum allowed junction temperature, Celsius.
    t_limit_c: float = 95.0

    def __post_init__(self) -> None:
        check_positive(self.r_th_k_per_w, "r_th_k_per_w")
        check_positive(self.c_th_j_per_k, "c_th_j_per_k")
        if self.t_limit_c <= 0:
            raise SimulationError("t_limit_c must be positive (Celsius)")

    @property
    def time_constant_s(self) -> float:
        """RC time constant."""
        return self.r_th_k_per_w * self.c_th_j_per_k

    def steady_state_c(self, power_w: float, ambient_c: float) -> float:
        """Equilibrium junction temperature at constant power."""
        check_non_negative(power_w, "power_w")
        return ambient_c + self.r_th_k_per_w * power_w

    def sustainable_power_w(self, ambient_c: float) -> float:
        """Largest constant power whose equilibrium stays at the limit."""
        headroom = self.t_limit_c - ambient_c
        if headroom <= 0:
            return 0.0
        return headroom / self.r_th_k_per_w


@dataclass
class ThermalNode:
    """Temperature state of one processor, integrated exactly.

    Over an interval of constant power ``P`` the solution of the RC
    equation is exponential relaxation toward the steady state:

        T(t+dt) = T_ss + (T(t) - T_ss) * exp(-dt / RC)
    """

    params: ThermalParams
    ambient_c: float = 25.0
    temperature_c: float = field(default=25.0)

    def advance(self, dt_s: float, power_w: float) -> float:
        """Integrate ``dt_s`` seconds at constant ``power_w``; returns the
        new temperature."""
        check_non_negative(dt_s, "dt_s")
        check_non_negative(power_w, "power_w")
        t_ss = self.params.steady_state_c(power_w, self.ambient_c)
        decay = math.exp(-dt_s / self.params.time_constant_s)
        self.temperature_c = t_ss + (self.temperature_c - t_ss) * decay
        return self.temperature_c

    @property
    def over_limit(self) -> bool:
        return self.temperature_c > self.params.t_limit_c

    @property
    def headroom_c(self) -> float:
        """Degrees below the junction limit (negative when over)."""
        return self.params.t_limit_c - self.temperature_c

    def set_ambient(self, ambient_c: float) -> None:
        """Change the inlet/ambient temperature (CRAC failure, recovery)."""
        self.ambient_c = float(ambient_c)


class ThermalMonitor:
    """Per-core thermal state plus budget derivation for the scheduler.

    ``margin_c`` backs the derived budget off the exact limit so the
    asymptotic approach never actually touches it (the Section 5 "margin
    of safety" applied thermally).
    """

    def __init__(self, num_cores: int, params: ThermalParams | None = None,
                 *, ambient_c: float = 25.0, margin_c: float = 3.0) -> None:
        if num_cores < 1:
            raise SimulationError("need at least one core")
        check_non_negative(margin_c, "margin_c")
        self.params = params or ThermalParams()
        self.margin_c = margin_c
        self.nodes = [
            ThermalNode(self.params, ambient_c=ambient_c,
                        temperature_c=ambient_c)
            for _ in range(num_cores)
        ]
        #: History of (time, hottest temperature) observations.
        self.history: list[tuple[float, float]] = []

    def advance(self, now_s: float, dt_s: float,
                core_powers_w: list[float]) -> None:
        """Integrate all cores over ``dt_s`` at their current powers."""
        if len(core_powers_w) != len(self.nodes):
            raise SimulationError(
                f"{len(core_powers_w)} powers for {len(self.nodes)} cores"
            )
        for node, power in zip(self.nodes, core_powers_w):
            node.advance(dt_s, power)
        self.history.append((now_s, self.hottest_c))

    @property
    def hottest_c(self) -> float:
        """Temperature of the hottest core."""
        return max(n.temperature_c for n in self.nodes)

    @property
    def any_over_limit(self) -> bool:
        return any(n.over_limit for n in self.nodes)

    def set_ambient(self, ambient_c: float) -> None:
        """Propagate an ambient change (CRAC failure) to every core."""
        for node in self.nodes:
            node.set_ambient(ambient_c)

    def warm_start(self, power_w_per_core: float) -> None:
        """Initialise every core at its steady-state temperature for the
        given power — how a machine that has been running for a while
        looks when the scenario begins."""
        for node in self.nodes:
            node.temperature_c = self.params.steady_state_c(
                power_w_per_core, node.ambient_c)

    def cpu_budget_w(self) -> float:
        """Aggregate processor budget sustainable at the current ambient.

        Per-core sustainable power at (limit − margin), summed.  This is
        the number a thermal trigger hands to
        :meth:`repro.core.daemon.FvsstDaemon.set_power_limit`.
        """
        per_core = max(
            0.0,
            (self.params.t_limit_c - self.margin_c
             - self.nodes[0].ambient_c) / self.params.r_th_k_per_w,
        )
        return per_core * len(self.nodes)
