"""Power substrate: CMOS power model, operating-point tables, supplies.

* :mod:`~repro.power.cmos` — ``P = C*Vdd^2*f + B*Vdd^2`` (Section 4.4).
* :mod:`~repro.power.vf_curve` — minimum-stable-voltage curves ``V(f)``.
* :mod:`~repro.power.table` — frequency→power operating-point tables;
  ships the paper's Table 1 verbatim.
* :mod:`~repro.power.lava` — a stand-in for the Lava circuit estimator:
  fits the CMOS model + V(f) curve to an operating-point table.
* :mod:`~repro.power.supply` — power supplies, failure/restore, cascade
  deadline (Section 2).
* :mod:`~repro.power.budget` — power budgets, safety margins, compliance
  monitoring.
* :mod:`~repro.power.energy` — energy integration and accounting.
"""

from .cmos import CmosPowerModel
from .vf_curve import VoltageFrequencyCurve, LinearVFCurve, TableVFCurve
from .table import FrequencyPowerTable, POWER4_TABLE, WORKED_EXAMPLE_TABLE
from .lava import LavaFit, fit_lava_model
from .supply import PowerSupply, SupplyBank
from .budget import PowerBudget, ComplianceMonitor, ComplianceRecord
from .energy import EnergyAccumulator, EnergyLedger
from .thermal import ThermalParams, ThermalNode, ThermalMonitor

__all__ = [
    "CmosPowerModel",
    "VoltageFrequencyCurve",
    "LinearVFCurve",
    "TableVFCurve",
    "FrequencyPowerTable",
    "POWER4_TABLE",
    "WORKED_EXAMPLE_TABLE",
    "LavaFit",
    "fit_lava_model",
    "PowerSupply",
    "SupplyBank",
    "PowerBudget",
    "ComplianceMonitor",
    "ComplianceRecord",
    "EnergyAccumulator",
    "EnergyLedger",
    "ThermalParams",
    "ThermalNode",
    "ThermalMonitor",
]
