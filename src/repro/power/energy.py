"""Energy integration and accounting.

The prototype could not measure energy directly; Section 6 notes "the data
collected is sufficient for post-processing to determine the amount of power
that would have been saved".  We do that post-processing online: an
:class:`EnergyAccumulator` integrates piecewise-constant power over
simulation time, and an :class:`EnergyLedger` keeps one accumulator per
component (core, non-CPU, ...) to report the Table 3 energy rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from ..units import check_non_negative

__all__ = ["EnergyAccumulator", "EnergyLedger"]


@dataclass
class EnergyAccumulator:
    """Integrates piecewise-constant power into joules.

    Usage: call :meth:`advance_to` with the current time and the power level
    that held *since the previous call*.
    """

    start_time_s: float = 0.0
    energy_j: float = field(default=0.0, init=False)
    last_time_s: float = field(init=False)

    def __post_init__(self) -> None:
        check_non_negative(self.start_time_s, "start_time_s")
        self.last_time_s = self.start_time_s

    def advance_to(self, now_s: float, power_w: float) -> None:
        """Accumulate ``power_w`` held over ``[last_time, now]``."""
        check_non_negative(power_w, "power_w")
        if now_s < self.last_time_s:
            raise SimulationError(
                f"time went backwards: {now_s} < {self.last_time_s}"
            )
        self.energy_j += power_w * (now_s - self.last_time_s)
        self.last_time_s = now_s

    def advance_many(self, times_s: np.ndarray, power_w: float) -> None:
        """Bulk :meth:`advance_to` over ascending ``times_s`` at a constant
        power level — bit-for-bit equal to the equivalent call sequence
        (``cumsum`` accumulates in the same left-to-right order).
        """
        check_non_negative(power_w, "power_w")
        t = np.asarray(times_s, dtype=float)
        if t.size == 0:
            return
        if t[0] < self.last_time_s or np.any(t[1:] < t[:-1]):
            raise SimulationError(
                f"time went backwards in bulk advance from {self.last_time_s}"
            )
        if power_w == 0.0:
            # Adding p*dt == +0.0 leaves a non-negative total bit-unchanged.
            self.last_time_s = float(t[-1])
            return
        buf = np.empty(t.size + 1)
        buf[0] = self.energy_j
        dt = np.empty(t.size)
        dt[0] = t[0] - self.last_time_s
        dt[1:] = t[1:] - t[:-1]
        buf[1:] = power_w * dt
        self.energy_j = float(buf.cumsum()[-1])
        self.last_time_s = float(t[-1])

    @property
    def elapsed_s(self) -> float:
        """Total integrated duration."""
        return self.last_time_s - self.start_time_s

    @property
    def average_power_w(self) -> float:
        """Mean power over the integrated span (0 before any time passes)."""
        if self.elapsed_s == 0.0:
            return 0.0
        return self.energy_j / self.elapsed_s


@dataclass
class EnergyLedger:
    """Named energy accumulators sharing a timeline."""

    start_time_s: float = 0.0
    accounts: dict[str, EnergyAccumulator] = field(default_factory=dict)

    def account(self, name: str) -> EnergyAccumulator:
        """Get (or lazily create) the named accumulator."""
        if name not in self.accounts:
            self.accounts[name] = EnergyAccumulator(start_time_s=self.start_time_s)
        return self.accounts[name]

    def advance_to(self, now_s: float, powers_w: dict[str, float]) -> None:
        """Advance every named account with its held power level.

        Accounts not mentioned are advanced at zero power so all accounts
        share a common ``last_time_s``.
        """
        for name in powers_w:
            self.account(name)  # materialise before the loop below
        for name, acc in self.accounts.items():
            acc.advance_to(now_s, powers_w.get(name, 0.0))

    def advance_many(self, times_s: np.ndarray,
                     powers_w: dict[str, float]) -> None:
        """Advance every account through all of ``times_s`` at once.

        Equivalent to calling :meth:`advance_to` once per time with the same
        ``powers_w``, without rebuilding the powers dict per step — the bulk
        path the simulation kernel uses for event-free spans.

        Stock accumulators integrate in a single 2-D cumsum (one numpy pass
        for the whole ledger instead of one per account); each row of an
        axis-1 cumsum accumulates left-to-right exactly like the 1-D case,
        so the result is bit-for-bit the per-account loop.  A zero-power
        row only adds ``+0.0`` terms, which leave the non-negative total
        bit-unchanged, matching the scalar shortcut.
        """
        if len(times_s) == 0:
            return
        for name in powers_w:
            self.account(name)
        accs = list(self.accounts.values())
        if len(accs) > 1 and all(type(a) is EnergyAccumulator for a in accs):
            t = np.asarray(times_s, dtype=float)
            if np.any(t[1:] < t[:-1]):
                raise SimulationError("time went backwards in bulk advance")
            powers = np.empty(len(accs))
            for k, name in enumerate(self.accounts):
                p = powers_w.get(name, 0.0)
                check_non_negative(p, "power_w")
                powers[k] = p
            last = np.array([a.last_time_s for a in accs])
            if np.any(t[0] < last):
                raise SimulationError(
                    "time went backwards in bulk advance"
                )
            buf = np.empty((len(accs), t.size + 1))
            buf[:, 0] = [a.energy_j for a in accs]
            buf[:, 1] = powers * (t[0] - last)
            if t.size > 1:
                buf[:, 2:] = powers[:, None] * (t[1:] - t[:-1])[None, :]
            totals = buf.cumsum(axis=1)[:, -1]
            t_last = float(t[-1])
            for k, acc in enumerate(accs):
                acc.energy_j = float(totals[k])
                acc.last_time_s = t_last
            return
        for name, acc in self.accounts.items():
            acc.advance_many(times_s, powers_w.get(name, 0.0))

    @property
    def total_energy_j(self) -> float:
        """Sum of all accounts."""
        return sum(a.energy_j for a in self.accounts.values())

    def energy_of(self, name: str) -> float:
        """Energy of one account (0.0 if it never existed)."""
        acc = self.accounts.get(name)
        return acc.energy_j if acc is not None else 0.0

    def normalized_against(self, baseline: "EnergyLedger") -> dict[str, float]:
        """Per-account energy ratio vs a baseline ledger — the Table 3
        "Energy @ cap" rows are this, with the non-fvsst run as baseline."""
        out: dict[str, float] = {}
        for name, acc in self.accounts.items():
            base = baseline.energy_of(name)
            if base <= 0.0:
                raise SimulationError(
                    f"baseline account {name!r} has no energy to normalise by"
                )
            out[name] = acc.energy_j / base
        return out
