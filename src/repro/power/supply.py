"""Power supplies and the cascading-failure scenario of Section 2.

A :class:`SupplyBank` holds redundant :class:`PowerSupply` units sharing the
system load.  When one fails, the survivors must carry the whole draw; if the
draw exceeds remaining capacity for longer than the cascade deadline
``DeltaT``, the next supply fails too (and so on until blackout).  The bank
is advanced in simulation time by the machine model, which reports the
instantaneous system draw.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from .. import constants
from ..errors import CascadeFailureError, SimulationError
from ..telemetry import EVENT_PSU_FAILURE, EVENT_PSU_RESTORED, get_telemetry
from ..units import check_non_negative, check_positive

__all__ = ["PowerSupply", "SupplyBank"]


@dataclass
class PowerSupply:
    """One supply: a capacity and a health flag."""

    capacity_w: float
    name: str = "psu"
    failed: bool = False

    def __post_init__(self) -> None:
        check_positive(self.capacity_w, "capacity_w")

    def fail(self) -> None:
        """Mark the supply failed (no-op if already failed)."""
        self.failed = True

    def restore(self) -> None:
        """Bring the supply back online."""
        self.failed = False


@dataclass
class SupplyBank:
    """A set of supplies plus cascade-overload bookkeeping.

    Parameters
    ----------
    supplies:
        The member units.
    cascade_deadline_s:
        ``DeltaT``: how long the bank tolerates demand above capacity before
        the most-loaded surviving supply fails.
    raise_on_cascade:
        When True (default), a cascade raises
        :class:`~repro.errors.CascadeFailureError`; benches that *measure*
        cascades set it False and inspect :attr:`cascade_count`.
    """

    supplies: list[PowerSupply]
    cascade_deadline_s: float = constants.PSU_CASCADE_DEADLINE_S
    raise_on_cascade: bool = True
    #: Simulation time at which the current overload episode began, if any.
    overload_since_s: float | None = field(default=None, init=False)
    #: Number of cascade failures that have occurred.
    cascade_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not self.supplies:
            raise SimulationError("a supply bank needs at least one supply")
        check_positive(self.cascade_deadline_s, "cascade_deadline_s")

    @classmethod
    def example_p630(cls, **kwargs) -> "SupplyBank":
        """The Section 2 configuration: two 480 W supplies."""
        return cls(
            supplies=[
                PowerSupply(constants.PSU_CAPACITY_W, name=f"psu{i}")
                for i in range(constants.PSU_COUNT)
            ],
            **kwargs,
        )

    # -- capacity ------------------------------------------------------------

    @property
    def online(self) -> list[PowerSupply]:
        """Supplies currently healthy."""
        return [s for s in self.supplies if not s.failed]

    @property
    def capacity_w(self) -> float:
        """Aggregate capacity of the healthy supplies."""
        return sum(s.capacity_w for s in self.online)

    @property
    def all_failed(self) -> bool:
        """True when no supply remains — the system is dark."""
        return not self.online

    # -- events --------------------------------------------------------------

    def fail_supply(self, index: int = 0, *,
                    now_s: float | None = None,
                    cascade: bool = False) -> float:
        """Fail the ``index``-th *online* supply; returns remaining capacity.

        This is the ``T0`` event of the motivating example.  ``now_s``
        (optional) timestamps the telemetry event; ``cascade`` marks
        overload-induced failures as such.
        """
        online = self.online
        if not online:
            raise SimulationError("no online supply left to fail")
        supply = online[index]
        supply.fail()
        tel = get_telemetry()
        if tel.enabled:
            tel.emit(EVENT_PSU_FAILURE, sim_time_s=now_s,
                     supply=supply.name, cascade=cascade,
                     remaining_capacity_w=self.capacity_w)
        return self.capacity_w

    def restore_supply(self, index: int = 0, *,
                       now_s: float | None = None) -> float:
        """Restore the ``index``-th *failed* supply; returns new capacity."""
        failed = [s for s in self.supplies if s.failed]
        if not failed:
            raise SimulationError("no failed supply to restore")
        supply = failed[index]
        supply.restore()
        tel = get_telemetry()
        if tel.enabled:
            tel.emit(EVENT_PSU_RESTORED, sim_time_s=now_s,
                     supply=supply.name, capacity_w=self.capacity_w)
        return self.capacity_w

    # -- overload tracking -----------------------------------------------------

    def observe(self, now_s: float, demand_w: float) -> bool:
        """Record the instantaneous demand at simulation time ``now_s``.

        Returns True if a cascade failure occurred at this observation.
        Overload episodes are tracked between calls: demand above capacity
        starts (or continues) an episode; once an episode's duration exceeds
        the cascade deadline, the first online supply fails, the episode
        restarts against the reduced capacity, and — depending on
        ``raise_on_cascade`` — an exception is raised.
        """
        check_non_negative(now_s, "now_s")
        check_non_negative(demand_w, "demand_w")
        if self.all_failed:
            # Fully cascaded: the system is dark; nothing more can fail.
            return True
        if demand_w <= self.capacity_w:
            self.overload_since_s = None
            return False
        if self.overload_since_s is None:
            self.overload_since_s = now_s
            return False
        if now_s - self.overload_since_s < self.cascade_deadline_s:
            return False
        # Deadline exceeded: cascade.
        self.cascade_count += 1
        self.fail_supply(0, now_s=now_s, cascade=True)
        self.overload_since_s = now_s if not self.all_failed else None
        if self.raise_on_cascade:
            raise CascadeFailureError(
                f"demand {demand_w:.1f} W exceeded capacity for more than "
                f"{self.cascade_deadline_s} s at t={now_s:.3f} s; supply cascade",
                time_s=now_s,
            )
        return True

    def headroom_w(self, demand_w: float) -> float:
        """Capacity minus demand — negative while overloaded."""
        return self.capacity_w - float(demand_w)

    def plan_constant_span(self, times_s: list[float],
                           demand_w: float) -> tuple[int, list[int]]:
        """Preview :meth:`observe` at every boundary of a constant-demand span.

        ``times_s`` are ascending observation times.  Returns ``(n_exec,
        actions)``: the caller should integrate the first ``n_exec`` chunks
        (fewer than ``len(times_s)`` only when ``raise_on_cascade`` cuts the
        span at a cascade) and then invoke :meth:`observe` at exactly the
        ``actions`` indices — the boundaries where the per-boundary sequence
        changes state (episode start/end, each cascade).  Repeating an
        unchanged observation is a no-op, so this reproduces the full
        sequence bit-for-bit while touching O(cascades) boundaries.

        Pure: nothing is mutated here; the replayed ``observe`` calls do the
        mutating (and the raising).
        """
        n = len(times_s)
        online = [s for s in self.supplies if not s.failed]
        if not online:
            return n, []            # dark: every observation is a no-op
        capacity = sum(s.capacity_w for s in online)
        if demand_w <= capacity:
            # Each boundary just clears any episode; one call reproduces it.
            return n, [0]
        actions: list[int] = []
        since = self.overload_since_s
        deadline = self.cascade_deadline_s
        i = 0
        while True:
            if since is None:
                since = times_s[i]
                actions.append(i)
                i += 1
                if i >= n:
                    return n, actions
            # First boundary with times[j] - since >= deadline.  bisect gets
            # close; the float-exact predicate decides (a - b >= c is not
            # the same rounding as a >= b + c, but it is monotone in a).
            j = bisect_left(times_s, since + deadline, i)
            while j > i and times_s[j - 1] - since >= deadline:
                j -= 1
            while j < n and times_s[j] - since < deadline:
                j += 1
            if j >= n:
                return n, actions
            actions.append(j)        # cascade fires here
            online.pop(0)            # observe() fails the first online supply
            if self.raise_on_cascade:
                # observe() raises on every cascade — including the one
                # that darkens the bank — so the span always cuts here.
                return j + 1, actions
            if not online:
                return n, actions    # dark from here on
            capacity = sum(s.capacity_w for s in online)
            since = times_s[j]
            i = j + 1
            if i >= n:
                return n, actions
            if demand_w <= capacity:
                actions.append(i)    # the next boundary ends the episode
                return n, actions
