"""The CMOS power equation of Section 4.4.

``P = C * Vdd^2 * f + B * Vdd^2`` — the first term is active (switching)
power, the second static/leakage power.  ``C`` is the switched capacitance
(farads; effectively includes activity factor) and ``B`` a process- and
temperature-dependent leakage conductance (siemens).  The paper computes, in
advance, the maximum power at each frequency using the minimum acceptable
voltage; clock gating is ignored, so the value is an upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PowerModelError
from ..units import check_non_negative, check_positive

__all__ = ["CmosPowerModel"]


@dataclass(frozen=True, slots=True)
class CmosPowerModel:
    """Analytic processor power as a function of frequency and voltage.

    Attributes
    ----------
    capacitance_f:
        Effective switched capacitance ``C`` in farads.
    leakage_s:
        Leakage conductance ``B`` in siemens (so ``B * Vdd^2`` is watts).
    """

    capacitance_f: float
    leakage_s: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.capacitance_f, "capacitance_f")
        check_non_negative(self.leakage_s, "leakage_s")

    def power_w(self, freq_hz: float, vdd: float) -> float:
        """Total power ``C*V^2*f + B*V^2`` in watts."""
        check_positive(freq_hz, "freq_hz")
        check_positive(vdd, "vdd")
        v2 = vdd * vdd
        return self.capacitance_f * v2 * freq_hz + self.leakage_s * v2

    def active_power_w(self, freq_hz: float, vdd: float) -> float:
        """Switching component ``C*V^2*f`` only."""
        check_positive(freq_hz, "freq_hz")
        check_positive(vdd, "vdd")
        return self.capacitance_f * vdd * vdd * freq_hz

    def static_power_w(self, vdd: float) -> float:
        """Leakage component ``B*V^2`` only."""
        check_positive(vdd, "vdd")
        return self.leakage_s * vdd * vdd

    def power_array_w(self, freqs_hz: np.ndarray, vdds: np.ndarray) -> np.ndarray:
        """Vectorised total power over matched frequency/voltage arrays."""
        f = np.asarray(freqs_hz, dtype=float)
        v = np.asarray(vdds, dtype=float)
        if f.shape != v.shape:
            raise PowerModelError(
                f"frequency shape {f.shape} != voltage shape {v.shape}"
            )
        if f.size and (np.any(f <= 0) or np.any(v <= 0)):
            raise PowerModelError("frequencies and voltages must be positive")
        v2 = v * v
        return self.capacitance_f * v2 * f + self.leakage_s * v2
