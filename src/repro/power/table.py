"""Frequency→power operating-point tables (Table 1 of the paper).

The scheduler never evaluates the CMOS equation online; Section 4.4 says the
maximum power at each available frequency (at minimum stable voltage) is
computed in advance.  :class:`FrequencyPowerTable` is that precomputed
artifact plus the lookups the scheduling algorithm needs:

* power at an exact operating point,
* the highest frequency whose power fits a limit,
* the next lower frequency (``f_less`` in Figure 3, step 2).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

import numpy as np

from .. import constants
from ..errors import FrequencyError, PowerModelError
from ..units import approx_equal, mhz

__all__ = ["FrequencyPowerTable", "POWER4_TABLE", "WORKED_EXAMPLE_TABLE"]


@dataclass(frozen=True)
class FrequencyPowerTable:
    """Immutable ascending table of (frequency Hz, peak power W) points."""

    freqs_hz: tuple[float, ...] = field()
    powers_w: tuple[float, ...] = field()

    def __init__(self, points: Mapping[float, float] | Iterable[tuple[float, float]]):
        items = points.items() if isinstance(points, Mapping) else points
        rows = sorted((float(f), float(p)) for f, p in items)
        if len(rows) < 2:
            raise PowerModelError("operating-point table needs at least two points")
        freqs = tuple(f for f, _ in rows)
        powers = tuple(p for _, p in rows)
        if any(f <= 0 for f in freqs) or any(p <= 0 for p in powers):
            raise PowerModelError("frequencies and powers must be positive")
        if len(set(freqs)) != len(freqs):
            raise PowerModelError("duplicate frequencies in operating-point table")
        if any(b <= a for a, b in zip(powers, powers[1:])):
            raise PowerModelError("power must be strictly increasing with frequency")
        object.__setattr__(self, "freqs_hz", freqs)
        object.__setattr__(self, "powers_w", powers)

    # -- basic introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self.freqs_hz)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.freqs_hz, self.powers_w))

    def __contains__(self, freq_hz: float) -> bool:
        return self._index_of(freq_hz) is not None

    @property
    def f_min_hz(self) -> float:
        """Lowest schedulable frequency."""
        return self.freqs_hz[0]

    @property
    def f_max_hz(self) -> float:
        """Highest schedulable frequency."""
        return self.freqs_hz[-1]

    @property
    def min_power_w(self) -> float:
        """Power at the lowest operating point — the per-processor floor."""
        return self.powers_w[0]

    @property
    def max_power_w(self) -> float:
        """Power at the highest operating point."""
        return self.powers_w[-1]

    def freqs_array(self) -> np.ndarray:
        """Frequencies as a float ndarray (ascending).

        Cached: every call returns the *same* read-only array object, so
        per-pass hot paths (the scheduler's loss matrix, the predictor)
        never rebuild it and may hold it without defensive copies.
        """
        return self._cached_array("_freqs_array_cache", self.freqs_hz)

    def powers_array(self) -> np.ndarray:
        """Powers as a float ndarray (ascending); cached and read-only."""
        return self._cached_array("_powers_array_cache", self.powers_w)

    def _cached_array(self, attr: str, values: tuple[float, ...]) -> np.ndarray:
        arr = self.__dict__.get(attr)
        if arr is None:
            arr = np.asarray(values, dtype=float)
            arr.setflags(write=False)
            object.__setattr__(self, attr, arr)
        return arr

    # -- lookups -------------------------------------------------------------

    def _index_of(self, freq_hz: float) -> int | None:
        i = bisect_left(self.freqs_hz, freq_hz)
        for j in (i - 1, i):
            if 0 <= j < len(self.freqs_hz) and approx_equal(
                self.freqs_hz[j], freq_hz, rel=1e-9
            ):
                return j
        return None

    def index_of(self, freq_hz: float) -> int:
        """Index of an exact operating point, or :class:`FrequencyError`."""
        idx = self._index_of(freq_hz)
        if idx is None:
            raise FrequencyError(
                f"{freq_hz:.6g} Hz is not an available operating point"
            )
        return idx

    def power_at(self, freq_hz: float) -> float:
        """Peak power (W) at an exact operating point."""
        return self.powers_w[self.index_of(freq_hz)]

    def next_lower(self, freq_hz: float) -> float | None:
        """The next operating point below ``freq_hz`` (Figure 3's ``f_less``),
        or ``None`` at the bottom of the ladder."""
        idx = self.index_of(freq_hz)
        return self.freqs_hz[idx - 1] if idx > 0 else None

    def next_higher(self, freq_hz: float) -> float | None:
        """The next operating point above ``freq_hz``, or ``None`` at the top."""
        idx = self.index_of(freq_hz)
        return self.freqs_hz[idx + 1] if idx + 1 < len(self.freqs_hz) else None

    def max_frequency_under(self, power_limit_w: float) -> float | None:
        """Highest frequency whose peak power is <= ``power_limit_w``.

        This is the "select the highest frequency that yields a power value
        less than the maximum" rule of Section 4.4.  Returns ``None`` when
        even the lowest point exceeds the limit.
        """
        i = bisect_right(self.powers_w, power_limit_w)
        return self.freqs_hz[i - 1] if i > 0 else None

    def quantize_down(self, freq_hz: float) -> float:
        """Highest operating point <= ``freq_hz`` (used to discretise a
        continuous ``f_ideal``); clamps to the bottom of the ladder."""
        i = bisect_right(self.freqs_hz, freq_hz * (1 + 1e-12))
        return self.freqs_hz[max(i - 1, 0)]

    def quantize_up(self, freq_hz: float) -> float:
        """Lowest operating point >= ``freq_hz``; clamps to the top."""
        i = bisect_left(self.freqs_hz, freq_hz * (1 - 1e-12))
        return self.freqs_hz[min(i, len(self.freqs_hz) - 1)]

    def nearest(self, freq_hz: float) -> float:
        """Operating point nearest to ``freq_hz`` (ties resolve downward)."""
        lo = self.quantize_down(freq_hz)
        hi = self.quantize_up(freq_hz)
        return lo if (freq_hz - lo) <= (hi - freq_hz) else hi

    # -- derivation ----------------------------------------------------------

    def restrict(self, freqs_hz: Iterable[float]) -> "FrequencyPowerTable":
        """A sub-table containing only the given (existing) frequencies.

        Used to build the coarse 5-point ladder of the Section 5 worked
        example from the full 16-point Table 1.
        """
        pts = [(f, self.power_at(f)) for f in freqs_hz]
        return FrequencyPowerTable(pts)

    def scaled_power(self, factor: float) -> "FrequencyPowerTable":
        """A table with every power multiplied by ``factor`` (process/thermal
        corner what-ifs in ablation benches)."""
        if factor <= 0:
            raise PowerModelError("scale factor must be positive")
        return FrequencyPowerTable(
            [(f, p * factor) for f, p in zip(self.freqs_hz, self.powers_w)]
        )


def _power4_table() -> FrequencyPowerTable:
    return FrequencyPowerTable(
        {mhz(f): p for f, p in constants.POWER4_POWER_TABLE_W.items()}
    )


#: The paper's Table 1: all sixteen 250–1000 MHz points.
POWER4_TABLE: FrequencyPowerTable = _power4_table()

#: The five-point 600–1000 MHz ladder of the Section 5 worked example.
WORKED_EXAMPLE_TABLE: FrequencyPowerTable = POWER4_TABLE.restrict(
    mhz(f) for f in constants.SCHEDULER_FREQUENCIES_MHZ
)
